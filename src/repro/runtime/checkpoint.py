"""Checkpoint/restart: full-precision snapshots a run can resume from.

A checkpoint is three sibling files sharing one prefix:

``<prefix>.npz``
    The numeric payload at full float64 precision — positions,
    velocities (leap-frog half-step staggered, stored as-is), types,
    per-type masses, stable atom ids, and the box.
``<prefix>.json``
    The sidecar: schema tag, step count, the spec's physics hash,
    engine name, every named RNG stream's bit-generator state, and
    engine-specific extras (e.g. the WSE swap counter).
``<prefix>.xyz``
    A human-readable extended-XYZ frame of the same state (``%.10f`` —
    inspection and interop, *not* the resume source; resume always
    reads the lossless ``.npz``).

Resume refuses a checkpoint whose ``spec_hash`` disagrees with the
resuming spec's physics (:class:`CheckpointError`): continuing a
trajectory under different physics is silent corruption, not a run.

Durability: every file is written to a ``*.tmp`` sibling, fsynced, and
renamed into place, so a crash mid-write never leaves a truncated file
under the final name — at worst an orphaned ``*.tmp``, which
:func:`sweep_orphan_tmp` removes on resume or cache load.  The step
count is stored in *both* the sidecar and the ``.npz`` payload;
:func:`read_checkpoint` rejects a trio whose two counts disagree (a
torn write that replaced one file but not the other).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.io.xyz import write_xyz
from repro.md.boundary import Box
from repro.md.state import AtomsState

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CheckpointError",
    "checkpoint_paths",
    "write_checkpoint",
    "read_checkpoint",
    "sweep_orphan_tmp",
]

#: Sidecar schema tag; bump on any incompatible layout change.
CHECKPOINT_SCHEMA = "repro-checkpoint/1"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, malformed, or physics-incompatible."""


@dataclass(frozen=True)
class Checkpoint:
    """One snapshot read back from disk (see module docs for layout)."""

    state: AtomsState
    step_count: int
    spec_hash: str
    engine: str
    rng_states: dict[str, dict] = field(default_factory=dict)
    extra: dict = field(default_factory=dict)


def checkpoint_paths(prefix: str | Path) -> tuple[Path, Path, Path]:
    """The ``(.npz, .json, .xyz)`` file trio for a checkpoint prefix."""
    prefix = Path(prefix)
    return (
        prefix.with_suffix(".npz"),
        prefix.with_suffix(".json"),
        prefix.with_suffix(".xyz"),
    )


def _replace_synced(tmp: Path, final: Path) -> None:
    """Fsync ``tmp`` then rename it over ``final`` (durable publish).

    Without the fsync, ``os.replace`` can publish a name whose blocks
    are still in the page cache — a crash then leaves a *complete-
    looking* but torn file under the final name, which a result cache
    would happily index.
    """
    fd = os.open(tmp, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, final)


def sweep_orphan_tmp(prefix: str | Path) -> list[Path]:
    """Remove ``*.tmp`` siblings an interrupted write left behind.

    Returns the paths removed.  Call on resume or cache load: the
    published trio is authoritative, so any surviving temporary is
    garbage from a write that never completed.
    """
    removed = []
    for path in checkpoint_paths(prefix):
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.unlink()
        except FileNotFoundError:
            continue
        except OSError:  # pragma: no cover - unreadable directory
            continue
        removed.append(tmp)
    return removed


def write_checkpoint(
    prefix: str | Path,
    state: AtomsState,
    *,
    step_count: int,
    spec_hash: str,
    engine: str,
    rng_states: dict[str, dict] | None = None,
    extra: dict | None = None,
    symbols: list[str] | None = None,
) -> tuple[Path, Path, Path]:
    """Write the checkpoint trio; returns the paths written.

    Each file is written to a temporary sibling, fsynced, and renamed
    into place, so a crash mid-write never leaves a truncated or torn
    checkpoint under the final name.
    """
    npz_path, json_path, xyz_path = checkpoint_paths(prefix)
    npz_path.parent.mkdir(parents=True, exist_ok=True)

    tmp = npz_path.with_name(npz_path.name + ".tmp")
    with open(tmp, "wb") as fh:
        np.savez(
            fh,
            positions=state.positions,
            velocities=state.velocities,
            types=state.types,
            masses=state.masses,
            ids=state.ids,
            box_lengths=state.box.lengths,
            box_periodic=state.box.periodic,
            box_origin=state.box.origin,
            # duplicated from the sidecar so a torn trio (one file
            # replaced, the other not) is detectable on read
            step_count=np.int64(step_count),
        )
    _replace_synced(tmp, npz_path)

    sidecar = {
        "schema": CHECKPOINT_SCHEMA,
        "step_count": int(step_count),
        "spec_hash": spec_hash,
        "engine": engine,
        "rng_states": rng_states or {},
        "extra": extra or {},
    }
    tmp = json_path.with_name(json_path.name + ".tmp")
    tmp.write_text(json.dumps(sidecar, indent=2, sort_keys=True) + "\n")
    _replace_synced(tmp, json_path)

    tmp = xyz_path.with_name(xyz_path.name + ".tmp")
    write_xyz(state, tmp, symbols=symbols, comment=f"step={int(step_count)}")
    _replace_synced(tmp, xyz_path)

    return npz_path, json_path, xyz_path


def read_checkpoint(
    prefix: str | Path, *, expected_spec_hash: str | None = None
) -> Checkpoint:
    """Read a checkpoint trio back (the ``.xyz`` is not consulted).

    With ``expected_spec_hash`` the sidecar's hash must match —
    resuming under different physics raises :class:`CheckpointError`.
    """
    npz_path, json_path, _ = checkpoint_paths(prefix)
    try:
        sidecar = json.loads(json_path.read_text())
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint sidecar {json_path}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"corrupt checkpoint sidecar {json_path}: {exc}"
        ) from exc
    schema = sidecar.get("schema")
    if schema != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"unsupported checkpoint schema {schema!r} in {json_path}; "
            f"expected {CHECKPOINT_SCHEMA!r}"
        )
    spec_hash = sidecar.get("spec_hash", "")
    if expected_spec_hash is not None and spec_hash != expected_spec_hash:
        raise CheckpointError(
            f"checkpoint {json_path} was written for spec hash "
            f"{spec_hash!r} but the resuming spec hashes to "
            f"{expected_spec_hash!r}; refusing to continue a trajectory "
            "under different physics"
        )

    try:
        with np.load(npz_path) as data:
            state = AtomsState(
                positions=data["positions"],
                velocities=data["velocities"],
                types=data["types"],
                masses=data["masses"],
                box=Box(
                    lengths=data["box_lengths"],
                    periodic=data["box_periodic"],
                    origin=data["box_origin"],
                ),
                ids=data["ids"],
            )
            # schema/1 checkpoints predate the duplicated count
            payload_step = (
                int(data["step_count"]) if "step_count" in data else None
            )
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint payload {npz_path}: {exc}"
        ) from exc
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"corrupt checkpoint payload {npz_path}: {exc}"
        ) from exc

    sidecar_step = int(sidecar.get("step_count", 0))
    if payload_step is not None and payload_step != sidecar_step:
        raise CheckpointError(
            f"torn checkpoint {npz_path}: payload records step "
            f"{payload_step} but sidecar {json_path} records step "
            f"{sidecar_step}; one file was replaced without the other"
        )

    return Checkpoint(
        state=state,
        step_count=int(sidecar.get("step_count", 0)),
        spec_hash=spec_hash,
        engine=sidecar.get("engine", ""),
        rng_states=sidecar.get("rng_states", {}),
        extra=sidecar.get("extra", {}),
    )
