"""Unified run telemetry shared by both engines.

The reference engine accumulates wall-time phase statistics
(:class:`repro.md.simulation.SimStats`); the lockstep machine records
per-tile cycle counts (:class:`repro.wse.trace.CycleTrace`) priced by
the calibrated cost model.  :class:`Telemetry` is the common currency
both are reduced to, so the CLI, the bench harness, and observers can
report any engine through one code path:

* ``phase_seconds`` — where the time went, per phase.  Measured wall
  time for the reference engine (neighbor / force / integrate); modeled
  machine time for the lockstep engine (exchange / candidate /
  interaction / fixed, from the cycle model).
* ``counters`` — engine-shaped work counts (pairs per step, neighbor
  rebuilds; candidates, interactions, swaps, modeled rate, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Telemetry"]


@dataclass(frozen=True)
class Telemetry:
    """One engine's accounting since construction (or the last reset).

    Attributes
    ----------
    engine:
        ``"reference"`` or ``"wse"``.
    steps:
        Timesteps executed.
    wall_time_s:
        Host wall-clock spent inside ``Engine.step`` calls.
    phase_seconds:
        Per-phase time split (measured or modeled; see module docs).
    counters:
        Engine-specific work counts and rates.
    trace_phases:
        Measured per-phase *wall* seconds from an attached
        :class:`repro.obs.Tracer` (the shared taxonomy), or ``None``
        when the run was untraced.  Unlike ``phase_seconds`` this uses
        the same vocabulary for both engines.
    """

    engine: str
    steps: int
    wall_time_s: float
    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    trace_phases: dict[str, float] | None = None

    @property
    def steps_per_s(self) -> float:
        """Host throughput over the accounted wall time."""
        if self.steps == 0 or self.wall_time_s <= 0.0:
            return 0.0
        return self.steps / self.wall_time_s

    def as_dict(self) -> dict:
        """JSON-ready representation (for reports and sidecars)."""
        out = {
            "engine": self.engine,
            "steps": self.steps,
            "wall_time_s": round(self.wall_time_s, 6),
            "steps_per_s": round(self.steps_per_s, 3),
            "phase_seconds": {
                k: round(float(v), 6) for k, v in self.phase_seconds.items()
            },
            "counters": {
                k: (round(float(v), 6) if isinstance(v, float) else v)
                for k, v in self.counters.items()
            },
        }
        if self.trace_phases is not None:
            out["trace_phases"] = {
                k: round(float(v), 6) for k, v in self.trace_phases.items()
            }
        return out
