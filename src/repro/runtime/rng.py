"""Deterministic random-number streams for a run.

One ``RunSpec.seed`` must fully determine a trajectory, no matter which
engine executes it and no matter which stochastic components are
enabled.  A single shared generator would break that: drawing jitter
noise would shift the thermostat's stream.  Instead the seed is split
into *named independent streams* via :class:`numpy.random.SeedSequence`
spawning — each consumer (velocity initialization, stochastic
thermostats, engine-internal noise) owns its own generator, so enabling
one never perturbs another.

Generators are checkpointable: :func:`get_rng_state` returns the
bit-generator state as a JSON-safe dict and :func:`set_rng_state`
restores it, which is how a resumed run continues the exact noise
sequence of the interrupted one.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "STREAM_NAMES",
    "seed_streams",
    "get_rng_state",
    "set_rng_state",
]

#: The named streams split off a run seed, in spawn order.  Order is
#: part of the on-disk/reproducibility contract: reordering would change
#: every seeded trajectory.
STREAM_NAMES = ("velocities", "thermostat", "engine")


def seed_streams(seed: int) -> dict[str, np.random.Generator]:
    """Independent named generators deterministically derived from ``seed``.

    ``velocities``
        Maxwell-Boltzmann velocity initialization.
    ``thermostat``
        Stochastic thermostats (Langevin noise).
    ``engine``
        Engine-internal randomness (e.g. ``WseMd`` timing jitter).
    """
    children = np.random.SeedSequence(seed).spawn(len(STREAM_NAMES))
    return {
        name: np.random.default_rng(child)
        for name, child in zip(STREAM_NAMES, children)
    }


def get_rng_state(rng: np.random.Generator) -> dict:
    """JSON-serializable snapshot of a generator's bit-generator state."""
    return _to_plain(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a snapshot taken by :func:`get_rng_state` in place."""
    rng.bit_generator.state = state


def _to_plain(obj):
    """Recursively convert numpy scalars so ``json.dump`` accepts it."""
    if isinstance(obj, dict):
        return {k: _to_plain(v) for k, v in obj.items()}
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    return obj
