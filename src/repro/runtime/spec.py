"""Declarative run configuration: the :class:`RunSpec`.

A spec names everything that determines a trajectory — workload
(element, slab replications, temperature), engine, timestep, thermostat,
swap interval, duration and seed — in one frozen dataclass loadable
from TOML or JSON.  The engine factory (:mod:`repro.runtime.engines`)
turns a spec into a running engine; two engines built from the same
spec produce the same physics, and two *reference* engines built from
the same spec produce bit-identical trajectories.

Validation is strict and loud: unknown keys, out-of-range values and
unsupported combinations raise :class:`SpecError` at parse time, never
silently at step 10,000 of a campaign.

:meth:`RunSpec.spec_hash` digests only the physics-determining fields
(not ``steps``, ``backend`` or checkpointing knobs), so a checkpoint
written under a spec can be resumed with a longer ``steps`` or a
different kernel backend but never with different physics.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from pathlib import Path

__all__ = ["SpecError", "ThermostatSpec", "RunSpec"]

ENGINES = ("reference", "wse")
THERMOSTAT_KINDS = ("berendsen", "langevin")

#: Fields that determine the trajectory (hashed for checkpoint
#: compatibility).  ``steps`` is run *length*, ``backend``/``workers``
#: are run *speed*, ``checkpoint_interval`` is bookkeeping — none
#: change physics, so all are excluded.
PHYSICS_FIELDS = (
    "element",
    "reps",
    "temperature",
    "engine",
    "dt_fs",
    "skin",
    "seed",
    "thermostat",
    "swap_interval",
    "force_symmetry",
)


class SpecError(ValueError):
    """A run spec is malformed, out of range, or inconsistent."""


@dataclass(frozen=True)
class ThermostatSpec:
    """Temperature-control section of a run spec.

    ``tau_fs`` is the Berendsen coupling time or the Langevin damping
    time (both in femtoseconds; LAMMPS conventions).
    """

    kind: str
    temperature: float
    tau_fs: float = 100.0

    def __post_init__(self) -> None:
        if self.kind not in THERMOSTAT_KINDS:
            raise SpecError(
                f"unknown thermostat kind {self.kind!r}; "
                f"expected one of {THERMOSTAT_KINDS}"
            )
        if self.temperature < 0:
            raise SpecError(
                f"thermostat temperature must be >= 0, got {self.temperature}"
            )
        if self.tau_fs <= 0:
            raise SpecError(f"thermostat tau_fs must be > 0, got {self.tau_fs}")

    @classmethod
    def from_dict(cls, data: dict) -> "ThermostatSpec":
        unknown = set(data) - {f.name for f in fields(cls)}
        if unknown:
            raise SpecError(f"unknown thermostat keys: {sorted(unknown)}")
        if "kind" not in data or "temperature" not in data:
            raise SpecError("thermostat requires 'kind' and 'temperature'")
        return cls(**data)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "temperature": float(self.temperature),
            "tau_fs": float(self.tau_fs),
        }


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one MD run.

    Attributes
    ----------
    element:
        Benchmark metal (``Cu``, ``W``, ``Ta``).
    reps:
        Thin-slab unit-cell replications ``(nx, ny, nz)``.
    temperature:
        Initial Maxwell-Boltzmann temperature (K); 0 leaves atoms cold.
    engine:
        ``"reference"`` (the LAMMPS-analogue loop) or ``"wse"`` (the
        lockstep wafer machine).
    steps:
        Run length in timesteps.
    seed:
        Master seed; split into independent named streams
        (:mod:`repro.runtime.rng`) so the spec fully determines the
        trajectory.
    dt_fs:
        Timestep (femtoseconds; the paper uses 2 fs).
    skin:
        Reference-engine neighbor-list skin (A); ignored by ``wse``.
    backend:
        Kernel backend (``numpy``, ``numba``, ``parallel``); ``None``
        keeps the process default.
    workers:
        Worker count for the ``parallel`` backend's sharded force
        pipeline (0 = one per CPU), or — on the ``wse`` engine — for
        the offset-dispatch pool that sweeps neighborhood-offset
        slices in forked workers (0 = serial sweeps).  Like
        ``backend``, it changes speed, never physics: wse trajectories
        are bitwise-reproducible per worker count and ``workers=1``
        matches the serial path bitwise.
    topology:
        Domain-grid shape ``(px, py)`` for the ``parallel`` backend's
        2D decomposition (``None`` keeps the 1D ``workers x 1`` column
        layout; accepts a ``"PXxPY"`` string in spec files).  Implies
        ``px * py`` workers — setting ``workers`` to a conflicting
        count is an error.  Like ``workers``, a layout/speed knob,
        never physics: trajectories are bitwise-reproducible per
        (topology, transport) and excluded from the spec hash.
    transport:
        How the sharded pipeline reaches its workers: ``"shared"``
        (fork + shared memory), ``"socket"`` (the same protocol over
        TCP, for out-of-process or remote shards), ``"inline"``
        (virtual workers inside the parent process — the zero-IPC tier
        for hosts with fewer cores than workers), or ``"auto"`` (the
        default: inline when the host is core-starved, shared
        otherwise).  Never physics — every transport produces
        bitwise-identical trajectories — so it is excluded from the
        spec hash.
    fuse_integrate:
        Reference-engine fusion of the leap-frog kick+drift onto the
        force output (the active kernel backend's ``force_integrate``
        pass).  Like ``backend``, a speed knob, never physics: the
        fused update performs the identical arithmetic — bitwise under
        the numpy backend, within the 1e-9 equivalence gate under
        compiled backends — so it is excluded from the spec hash and a
        checkpoint can be resumed with the knob flipped.  Ignored by
        ``wse``.
    offset_chunk:
        WSE streaming-sweep batch size: how many neighborhood offsets
        are stacked per exchange chunk (0 auto-sizes from the grid so
        the chunk buffers stay around 100 MB).  Peak memory is
        O(chunk x grid); any chunking yields bitwise-identical
        trajectories, so this is a speed/memory knob, never physics.
        Ignored by ``reference``.
    thermostat:
        Optional temperature control applied every step.  ``langevin``
        requires the reference engine (per-atom noise needs a stable
        atom order); ``berendsen`` runs on both.
    swap_interval:
        WSE atom-swap remapping interval (0 disables); ignored by
        ``reference``.
    force_symmetry:
        WSE half-neighborhood optimization (Sec. VI-A); ignored by
        ``reference``.
    checkpoint_interval:
        Write a checkpoint every N steps when the runner is given a
        checkpoint prefix (0 = only a final checkpoint).
    """

    element: str = "Ta"
    reps: tuple[int, int, int] = (8, 8, 3)
    temperature: float = 290.0
    engine: str = "reference"
    steps: int = 100
    seed: int = 0
    dt_fs: float = 2.0
    skin: float = 0.5
    backend: str | None = None
    workers: int = 0
    topology: tuple[int, int] | None = None
    transport: str | None = None
    fuse_integrate: bool = False
    offset_chunk: int = 0
    thermostat: ThermostatSpec | None = None
    swap_interval: int = 0
    force_symmetry: bool = False
    checkpoint_interval: int = 0

    def __post_init__(self) -> None:
        from repro.potentials.elements import ELEMENTS

        if self.element not in ELEMENTS:
            raise SpecError(
                f"unknown element {self.element!r}; "
                f"expected one of {sorted(ELEMENTS)}"
            )
        if self.engine not in ENGINES:
            raise SpecError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        reps = tuple(int(r) for r in self.reps)
        if len(reps) != 3 or any(r < 1 for r in reps):
            raise SpecError(f"reps must be three positive ints, got {self.reps}")
        object.__setattr__(self, "reps", reps)
        if self.temperature < 0:
            raise SpecError(
                f"temperature must be >= 0, got {self.temperature}"
            )
        if self.steps < 0:
            raise SpecError(f"steps must be >= 0, got {self.steps}")
        if self.dt_fs <= 0:
            raise SpecError(f"dt_fs must be > 0, got {self.dt_fs}")
        if self.skin < 0:
            raise SpecError(f"skin must be >= 0, got {self.skin}")
        if self.swap_interval < 0:
            raise SpecError(
                f"swap_interval must be >= 0, got {self.swap_interval}"
            )
        if self.checkpoint_interval < 0:
            raise SpecError(
                f"checkpoint_interval must be >= 0, "
                f"got {self.checkpoint_interval}"
            )
        if self.workers < 0:
            raise SpecError(f"workers must be >= 0, got {self.workers}")
        if self.topology is not None:
            topo = self.topology
            if isinstance(topo, str):
                parts = topo.lower().split("x")
                if len(parts) != 2 or not all(p.isdigit() for p in parts):
                    raise SpecError(
                        f"topology must be 'PXxPY', got {self.topology!r}"
                    )
                topo = (int(parts[0]), int(parts[1]))
            try:
                topo = tuple(int(p) for p in topo)
            except (TypeError, ValueError) as exc:
                raise SpecError(
                    f"topology must be two positive ints, got {self.topology!r}"
                ) from exc
            if len(topo) != 2 or topo[0] < 1 or topo[1] < 1:
                raise SpecError(
                    f"topology must be two positive ints, got {self.topology!r}"
                )
            object.__setattr__(self, "topology", topo)
            if self.workers and self.workers != topo[0] * topo[1]:
                raise SpecError(
                    f"workers={self.workers} conflicts with topology "
                    f"{topo[0]}x{topo[1]} ({topo[0] * topo[1]} domains)"
                )
        if self.transport is not None:
            from repro.parallel.transport import TRANSPORTS

            if self.transport != "auto" and self.transport not in TRANSPORTS:
                raise SpecError(
                    f"unknown transport {self.transport!r}; "
                    f"expected one of {TRANSPORTS} or 'auto'"
                )
        if self.offset_chunk < 0:
            raise SpecError(
                f"offset_chunk must be >= 0, got {self.offset_chunk}"
            )
        if isinstance(self.thermostat, dict):
            object.__setattr__(
                self, "thermostat", ThermostatSpec.from_dict(self.thermostat)
            )
        if (
            self.thermostat is not None
            and self.thermostat.kind == "langevin"
            and self.engine == "wse"
        ):
            raise SpecError(
                "langevin thermostat requires engine='reference' "
                "(per-atom noise needs a stable atom order)"
            )

    # -- serialization -----------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Build a spec from a plain mapping, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise SpecError(f"spec must be a table/object, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown spec keys: {sorted(unknown)}")
        data = dict(data)
        if isinstance(data.get("thermostat"), dict):
            data["thermostat"] = ThermostatSpec.from_dict(data["thermostat"])
        try:
            return cls(**data)
        except SpecError:
            raise
        except (TypeError, ValueError) as exc:
            raise SpecError(str(exc)) from exc

    @classmethod
    def from_file(cls, path: str | Path) -> "RunSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise SpecError(f"cannot read spec file {path}: {exc}") from exc
        suffix = path.suffix.lower()
        if suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(raw.decode("utf-8"))
            except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
                raise SpecError(f"invalid TOML in {path}: {exc}") from exc
        elif suffix == ".json":
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise SpecError(f"invalid JSON in {path}: {exc}") from exc
        else:
            raise SpecError(
                f"unsupported spec format {suffix!r} for {path}; "
                "expected .toml or .json"
            )
        return cls.from_dict(data)

    def to_dict(self) -> dict:
        """JSON/TOML-ready plain mapping (inverse of :meth:`from_dict`)."""
        out = {
            "element": self.element,
            "reps": list(self.reps),
            "temperature": float(self.temperature),
            "engine": self.engine,
            "steps": int(self.steps),
            "seed": int(self.seed),
            "dt_fs": float(self.dt_fs),
            "skin": float(self.skin),
            "swap_interval": int(self.swap_interval),
            "force_symmetry": bool(self.force_symmetry),
            "checkpoint_interval": int(self.checkpoint_interval),
        }
        if self.backend is not None:
            out["backend"] = self.backend
        if self.workers:
            out["workers"] = int(self.workers)
        if self.topology is not None:
            out["topology"] = list(self.topology)
        if self.transport is not None:
            out["transport"] = self.transport
        if self.fuse_integrate:
            out["fuse_integrate"] = True
        if self.offset_chunk:
            out["offset_chunk"] = int(self.offset_chunk)
        if self.thermostat is not None:
            out["thermostat"] = self.thermostat.to_dict()
        return out

    def with_engine(self, engine: str) -> "RunSpec":
        """Copy of this spec targeting a different engine."""
        return replace(self, engine=engine)

    def spec_hash(self) -> str:
        """Digest of the physics-determining fields (see module docs)."""
        payload = {}
        for name in PHYSICS_FIELDS:
            value = getattr(self, name)
            if isinstance(value, ThermostatSpec):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            payload[name] = value
        blob = json.dumps(payload, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]
