"""Bravais cell definitions for the cubic crystals used in the paper.

The paper's benchmark metals are copper (FCC) and tungsten/tantalum
(BCC).  A :class:`BravaisCell` holds the conventional-cell fractional
basis; everything else (replication, slabs, shells) derives from it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["BravaisCell", "FCC", "BCC", "SC", "cell_by_name"]


@dataclass(frozen=True)
class BravaisCell:
    """Conventional cubic cell with a fractional basis.

    Attributes
    ----------
    name:
        Structure label ("fcc", "bcc", "sc").
    basis:
        Fractional coordinates of the basis atoms, shape (n_basis, 3).
    nn_factor:
        Nearest-neighbor distance divided by the lattice constant.
    """

    name: str
    basis: np.ndarray = field(repr=False)
    nn_factor: float

    def __post_init__(self) -> None:
        b = np.asarray(self.basis, dtype=np.float64)
        if b.ndim != 2 or b.shape[1] != 3:
            raise ValueError(f"basis must be (n, 3), got {b.shape}")
        if np.any(b < 0.0) or np.any(b >= 1.0):
            raise ValueError("basis fractions must lie in [0, 1)")
        object.__setattr__(self, "basis", b)

    @property
    def atoms_per_cell(self) -> int:
        """Basis atoms in one conventional cell."""
        return len(self.basis)

    def nn_distance(self, a: float) -> float:
        """Nearest-neighbor distance for lattice constant ``a`` (A)."""
        return self.nn_factor * a

    def atomic_volume(self, a: float) -> float:
        """Volume per atom (A^3) at lattice constant ``a``."""
        return a**3 / self.atoms_per_cell

    def number_density(self, a: float) -> float:
        """Atoms per A^3 at lattice constant ``a``."""
        return self.atoms_per_cell / a**3


FCC = BravaisCell(
    name="fcc",
    basis=np.array(
        [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]]
    ),
    nn_factor=1.0 / math.sqrt(2.0),
)

BCC = BravaisCell(
    name="bcc",
    basis=np.array([[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]]),
    nn_factor=math.sqrt(3.0) / 2.0,
)

SC = BravaisCell(
    name="sc",
    basis=np.array([[0.0, 0.0, 0.0]]),
    nn_factor=1.0,
)

_CELLS = {"fcc": FCC, "bcc": BCC, "sc": SC}


def cell_by_name(name: str) -> BravaisCell:
    """Look up a cell definition by structure name."""
    try:
        return _CELLS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown structure {name!r}; known: {sorted(_CELLS)}"
        ) from None
