"""Bicrystal grain-boundary slabs (paper Fig. 2 / Sec. V-E workload).

A symmetric tilt grain boundary: two grains of the same crystal rotated
by +/- theta/2 about the z axis meet at the y = 0 plane.  Atoms in the
boundary region form the complex, slowly evolving structures the paper
targets; during MD they diffuse, which is what exercises the online
atom-swap remapping (Fig. 9).
"""

from __future__ import annotations

import numpy as np

from repro.lattice.cells import BravaisCell
from repro.lattice.crystals import Crystal, replicate

__all__ = ["make_grain_boundary_slab", "rotation_z"]


def rotation_z(theta: float) -> np.ndarray:
    """3x3 rotation matrix about the z axis by ``theta`` radians."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])


def make_grain_boundary_slab(
    cell: BravaisCell,
    a: float,
    extent_xy: tuple[float, float],
    thickness_z: float,
    *,
    misorientation_deg: float = 22.6,
    min_separation_factor: float = 0.7,
) -> Crystal:
    """Build a symmetric tilt bicrystal slab.

    Parameters
    ----------
    cell, a:
        Crystal structure and lattice constant.
    extent_xy:
        Target (Lx, Ly) dimensions in angstroms; the boundary plane is
        y = 0, grains fill y < 0 and y > 0.
    thickness_z:
        Slab thickness in angstroms.
    misorientation_deg:
        Total tilt angle between the two grains (each rotated by half).
    min_separation_factor:
        Atoms closer than this fraction of the nearest-neighbor distance
        across the boundary are culled (one of each offending pair), the
        standard bicrystal construction step.
    """
    lx, ly = extent_xy
    if lx <= 0 or ly <= 0 or thickness_z <= 0:
        raise ValueError(
            f"extents must be positive, got {extent_xy}, {thickness_z}"
        )
    theta = np.radians(misorientation_deg) / 2.0
    # Generate a generously sized block, rotate, then crop: rotation
    # shrinks the inscribed axis-aligned rectangle.
    margin = 1.5
    nx = int(np.ceil(margin * lx / a)) + 2
    ny = int(np.ceil(margin * ly / a)) + 2
    nz = max(1, int(np.ceil(thickness_z / a)))

    grains = []
    for sign, keep_upper in ((+1.0, False), (-1.0, True)):
        block = replicate(cell, a, (nx, ny, nz))
        pos = block.positions - block.box / 2.0
        pos = pos @ rotation_z(sign * theta).T
        inside = (
            (np.abs(pos[:, 0]) <= lx / 2.0)
            & (np.abs(pos[:, 2]) <= thickness_z / 2.0)
        )
        if keep_upper:
            inside &= (pos[:, 1] >= 0.0) & (pos[:, 1] <= ly / 2.0)
        else:
            inside &= (pos[:, 1] < 0.0) & (pos[:, 1] >= -ly / 2.0)
        grains.append(pos[inside])
    positions = np.concatenate(grains, axis=0)

    positions = _cull_close_pairs(
        positions, cell.nn_distance(a) * min_separation_factor
    )
    box = np.array([lx, ly, thickness_z])
    return Crystal(positions=positions, box=box, cell=cell, a=a)


def _cull_close_pairs(positions: np.ndarray, r_min: float) -> np.ndarray:
    """Remove one atom from every pair closer than ``r_min``.

    Overlaps only occur in a thin band around the boundary plane, so the
    search is restricted there for efficiency.
    """
    near = np.abs(positions[:, 1]) < 2.0 * r_min
    band_idx = np.nonzero(near)[0]
    if len(band_idx) < 2:
        return positions
    band = positions[band_idx]
    # O(n_band^2) is fine: the band is a 1-D strip of the slab.
    delta = band[:, None, :] - band[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", delta, delta)
    np.fill_diagonal(dist2, np.inf)
    drop: set[int] = set()
    close_i, close_j = np.nonzero(dist2 < r_min * r_min)
    for bi, bj in zip(close_i, close_j):
        if bi < bj and band_idx[bi] not in drop and band_idx[bj] not in drop:
            drop.add(int(band_idx[bj]))
    if not drop:
        return positions
    keep = np.ones(len(positions), dtype=bool)
    keep[list(drop)] = False
    return positions[keep]
