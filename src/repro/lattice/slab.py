"""Thin-slab geometries (paper Sec. IV-B, simulation type 1).

The paper's benchmark domains are thin slabs (~60 nm x 60 nm x 2 nm)
with open boundaries: wide in x and y, roughly 6 conventional cells
(10+ atomic layers) thick in z.  Thin slabs are the natural shape for
the one-atom-per-core mapping because the wafer is a 2-D grid: the
projection ``P`` flattens the slab onto the x-y plane and each core owns
the column of space above it (Sec. III-A).
"""

from __future__ import annotations

import numpy as np

from repro.lattice.cells import BravaisCell
from repro.lattice.crystals import Crystal, replicate

__all__ = ["make_slab", "slab_for_element"]


def make_slab(
    cell: BravaisCell,
    a: float,
    reps: tuple[int, int, int],
    *,
    center: bool = True,
) -> Crystal:
    """Thin slab: a replicated crystal, optionally centered on the origin.

    ``reps = (nx, ny, nz)`` with ``nz`` small is the paper's geometry.
    Centering puts the slab's mid-plane at z = 0, which keeps the
    atom-to-core projection symmetric.
    """
    crystal = replicate(cell, a, reps)
    if center:
        crystal.positions -= crystal.box / 2.0
    return crystal


def slab_for_element(element, *, scale: float = 1.0) -> Crystal:
    """The Table I benchmark slab for an :class:`ElementData`.

    ``scale`` < 1 shrinks the in-plane replication for affordable
    functional runs while preserving thickness (the z replication),
    which keeps per-atom interaction counts representative.  The full
    Table I slab is ``scale = 1``.
    """
    nx, ny, nz = element.replication
    if scale != 1.0:
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        nx = max(2, int(round(nx * scale)))
        ny = max(2, int(round(ny * scale)))
    return make_slab(element.cell, element.lattice_constant, (nx, ny, nz))
