"""Crystal generation by conventional-cell replication.

``replicate(cell, a, (nx, ny, nz))`` produces the ``nx x ny x nz``
supercell used throughout the paper's benchmarks, e.g. Cu 174x192x6
(801,792 atoms) and W/Ta 256x261x6 (801,792 atoms) in Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lattice.cells import BravaisCell

__all__ = ["Crystal", "replicate"]


@dataclass
class Crystal:
    """A generated crystal: positions plus the bounding box.

    Attributes
    ----------
    positions:
        Atom coordinates (N, 3) in angstroms.
    box:
        Box edge lengths (3,) — the extent of the replicated cells.
    cell:
        The Bravais cell the crystal was built from.
    a:
        Lattice constant (A).
    """

    positions: np.ndarray
    box: np.ndarray
    cell: BravaisCell
    a: float

    @property
    def n_atoms(self) -> int:
        """Number of atoms."""
        return len(self.positions)


def replicate(
    cell: BravaisCell,
    a: float,
    reps: tuple[int, int, int],
    *,
    origin: np.ndarray | None = None,
) -> Crystal:
    """Replicate a conventional cell into an ``nx x ny x nz`` supercell.

    Atom ordering is cell-major (all basis atoms of cell (0,0,0), then
    (1,0,0), ...), which keeps spatially adjacent atoms adjacent in
    memory — the layout both the reference engine's cell list and the
    WSE mapping exploit.
    """
    if a <= 0:
        raise ValueError(f"lattice constant must be positive, got {a}")
    nx, ny, nz = reps
    if min(nx, ny, nz) < 1:
        raise ValueError(f"replications must be >= 1, got {reps}")
    ix, iy, iz = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    cells = np.stack([ix.ravel(), iy.ravel(), iz.ravel()], axis=1).astype(np.float64)
    # (n_cells, 1, 3) + (1, n_basis, 3) -> (n_cells, n_basis, 3)
    frac = cells[:, None, :] + cell.basis[None, :, :]
    positions = (frac * a).reshape(-1, 3)
    if origin is not None:
        positions = positions + np.asarray(origin, dtype=np.float64)
    box = np.array([nx, ny, nz], dtype=np.float64) * a
    return Crystal(positions=positions, box=box, cell=cell, a=a)
