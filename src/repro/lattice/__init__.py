"""Crystal lattice generation: bulk crystals, thin slabs, grain boundaries.

Provides the workloads of the paper's evaluation: thin-slab single
crystals of Cu/W/Ta (Sec. IV-B type 1), controlled 2-D grids (type 2),
and bicrystal grain-boundary slabs (type 3 / Fig. 2 / Fig. 9).
"""

from repro.lattice.cells import BravaisCell, FCC, BCC, cell_by_name
from repro.lattice.crystals import replicate, Crystal
from repro.lattice.slab import make_slab, slab_for_element
from repro.lattice.grain_boundary import make_grain_boundary_slab
from repro.lattice.neighbors_ideal import neighbor_shells, coordination_within

__all__ = [
    "BravaisCell",
    "FCC",
    "BCC",
    "cell_by_name",
    "replicate",
    "Crystal",
    "make_slab",
    "slab_for_element",
    "make_grain_boundary_slab",
    "neighbor_shells",
    "coordination_within",
]
