"""Ideal-crystal neighbor shells and coordination counts.

Used in two places:

* the Rose-EOS potential builder needs lattice sums over shells
  (:func:`neighbor_shells`), and
* the paper's per-atom interaction counts (Table I: Cu 42, W ~58-59,
  Ta 14) are coordination numbers within the cutoff
  (:func:`coordination_within`), which tests validate directly.

Distances are returned in units of the *nearest-neighbor distance*, the
same convention the paper's Table VI uses for ``r_cut / r_lattice``.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.cells import BravaisCell
from repro.lattice.crystals import replicate

__all__ = ["neighbor_shells", "coordination_within", "lattice_sum"]


# Shell enumeration is called hundreds of times by the potential builder
# (once per EOS sample point); cache per (structure, range) bucket.
_SHELL_CACHE: dict[tuple[str, int], list[tuple[float, int]]] = {}


def neighbor_shells(
    cell: BravaisCell,
    max_distance_nn: float,
    *,
    tol: float = 1e-6,
) -> list[tuple[float, int]]:
    """Shells ``(distance_in_nn_units, count)`` around a bulk atom.

    ``max_distance_nn`` bounds the enumeration, in nearest-neighbor
    units.  Shell distances are exact for the ideal crystal at 0 K.
    """
    if max_distance_nn <= 0:
        raise ValueError(f"max distance must be positive, got {max_distance_nn}")
    # Cache on a bucketed range so nearby requests share one enumeration.
    bucket = int(np.ceil(max_distance_nn * 2.0))
    key = (cell.name, bucket)
    if key not in _SHELL_CACHE:
        _SHELL_CACHE[key] = _enumerate_shells(cell, bucket / 2.0, tol)
    return [s for s in _SHELL_CACHE[key] if s[0] <= max_distance_nn + tol]


def _enumerate_shells(
    cell: BravaisCell, max_distance_nn: float, tol: float
) -> list[tuple[float, int]]:
    a = 1.0
    nn = cell.nn_distance(a)
    r_max = max_distance_nn * nn
    # enough replications that the central atom's sphere is covered
    reps = int(np.ceil(r_max / a)) + 1
    crystal = replicate(cell, a, (2 * reps + 1,) * 3)
    center = np.array([reps, reps, reps], dtype=np.float64) * a
    d = np.linalg.norm(crystal.positions - center, axis=1)
    d = d[(d > tol) & (d <= r_max + tol)]
    dist, counts = np.unique(np.round(d / nn, 6), return_counts=True)
    return [(float(x), int(c)) for x, c in zip(dist, counts)]


def coordination_within(cell: BravaisCell, cutoff_nn: float) -> int:
    """Number of neighbors of a bulk atom within ``cutoff_nn`` NN units.

    This reproduces the paper's ``n_interaction`` for bulk atoms:
    Cu at 1.94 -> 42, Ta at 1.39 -> 14, W at 2.02 -> 58.
    """
    return sum(count for dist, count in neighbor_shells(cell, cutoff_nn))


def lattice_sum(
    cell: BravaisCell,
    fn,
    cutoff: float,
    a: float,
    *,
    scale: float = 1.0,
) -> float:
    """Sum ``fn(r)`` over all neighbors of a bulk atom.

    Distances are absolute (A): shells of the crystal at lattice
    constant ``a`` uniformly scaled by ``scale``, truncated at
    ``cutoff`` (absolute, not scaled).  Used by the potential builder to
    evaluate densities and pair-energy sums under uniform expansion.
    """
    nn = cell.nn_distance(a)
    # Enumerate shells generously: at the smallest scale the cutoff
    # reaches further (in equilibrium-shell units).
    max_nn_units = cutoff / (nn * min(scale, 1.0)) + 1.0
    total = 0.0
    for dist_nn, count in neighbor_shells(cell, max_nn_units):
        r = dist_nn * nn * scale
        if r < cutoff:
            total += count * fn(r)
    return total
