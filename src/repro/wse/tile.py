"""Per-tile core model: SRAM budget and instruction-level cycle costs.

Each WSE tile has 48 kB of SRAM holding the worker's atom state, its
spline tables, and the candidate receive buffers (paper Sec. III-A).
:class:`SramBudget` checks that a worker configuration actually fits —
the constraint that shapes how large ``b`` (and therefore the candidate
count) may grow.

:class:`TileCoreModel` prices the worker's compute phases in cycles from
the FLOP counts of paper Table III plus overhead factors, and is the
source of the per-candidate / per-interaction / fixed constants the
higher-level cycle model (:mod:`repro.core.cycle_model`) uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SramBudget", "TileCoreModel", "FlopCounts", "TABLE3_FLOPS"]


@dataclass(frozen=True)
class FlopCounts:
    """Adds / multiplies / other ops for one model term (Table III)."""

    adds: int
    muls: int
    other: int = 0

    @property
    def total(self) -> int:
        """All operations counted as FLOPs (the paper's convention)."""
        return self.adds + self.muls + self.other


#: Paper Table III: FLOPs in the (per-candidate, per-interaction, fixed)
#: basis.  Candidate: displacement (3), squared distance (2+3) and the
#: threshold check (1).  Interaction: Newton-Raphson rsqrt, distance,
#: spline segment, density evaluation, linear splines, force evaluation.
#: Fixed: embedding spline segment + component, Verlet integration.
TABLE3_FLOPS = {
    "candidate": FlopCounts(adds=6, muls=3, other=0),
    "interaction": FlopCounts(adds=14, muls=19, other=3),
    "fixed": FlopCounts(adds=8, muls=2, other=2),
}


@dataclass
class SramBudget:
    """SRAM accounting for one worker tile.

    All sizes in bytes; FP32 storage throughout (the WSE implementation
    is single precision).
    """

    capacity: int = 48 * 1024
    word: int = 4

    def atom_state(self) -> int:
        """Identity, position, velocity, type: i32 + 3f + 3f + i32."""
        return self.word * 8

    def candidate_buffers(self, b: int) -> int:
        """Receive buffers for one exchange: (2b+1)^2 atom records.

        Each record: id + position (4 words) during candidate exchange,
        plus one word per candidate for the embedding-derivative
        exchange, plus the gathered (compacted) copy used for vectorized
        force evaluation.
        """
        n = (2 * b + 1) ** 2
        record = 4 * self.word
        gathered = 4 * self.word
        embed = self.word
        return n * (record + gathered + embed)

    def table_bytes(self, n_rho_knots: int, n_phi_knots: int, n_embed_knots: int) -> int:
        """Spline tables: 4 coefficient words per segment."""
        return 4 * self.word * (
            (n_rho_knots - 1) + (n_phi_knots - 1) + (n_embed_knots - 1)
        )

    def total(
        self,
        b: int,
        *,
        n_rho_knots: int = 64,
        n_phi_knots: int = 64,
        n_embed_knots: int = 64,
        code_and_stack: int = 8 * 1024,
    ) -> int:
        """Total footprint of a worker configuration."""
        return (
            self.atom_state()
            + self.candidate_buffers(b)
            + self.table_bytes(n_rho_knots, n_phi_knots, n_embed_knots)
            + code_and_stack
        )

    def fits(self, b: int, **kwargs) -> bool:
        """Does the configuration fit in tile SRAM?"""
        return self.total(b, **kwargs) <= self.capacity

    def max_b(self, **kwargs) -> int:
        """Largest neighborhood half-width that fits."""
        b = 1
        while self.fits(b + 1, **kwargs):
            b += 1
        return b


@dataclass
class TileCoreModel:
    """Cycle pricing of the worker's compute phases.

    The datapath retires ``flops_per_cycle`` FP32 operations per cycle
    at best; real code adds per-element overhead (loads/stores beyond
    the fused streams, address generation, branches) captured by the
    ``overhead_*`` fields.  Defaults are calibrated so the resulting
    per-candidate / per-interaction / fixed costs land on the paper's
    measured Table II constants at the WSE-2 clock (see
    :mod:`repro.core.cycle_model`, which consumes this model).
    """

    flops_per_cycle: float = 2.0
    overhead_candidate: float = 15.7  # cycles per candidate beyond FLOPs
    overhead_interaction: float = 42.9
    overhead_fixed: float = 414.0

    def candidate_cycles(self) -> float:
        """Distance-check + compaction cost per received candidate."""
        return TABLE3_FLOPS["candidate"].total / self.flops_per_cycle + (
            self.overhead_candidate
        )

    def interaction_cycles(self) -> float:
        """Force-evaluation cost per accepted interaction."""
        return TABLE3_FLOPS["interaction"].total / self.flops_per_cycle + (
            self.overhead_interaction
        )

    def fixed_cycles(self) -> float:
        """Embedding + integration + loop control per timestep."""
        return TABLE3_FLOPS["fixed"].total / self.flops_per_cycle + (
            self.overhead_fixed
        )

    def flops_per_step(self, n_candidate: float, n_interaction: float) -> float:
        """Algorithm-specified FLOPs per atom per timestep (Table III)."""
        return (
            TABLE3_FLOPS["candidate"].total * n_candidate
            + TABLE3_FLOPS["interaction"].total * n_interaction
            + TABLE3_FLOPS["fixed"].total
        )
