"""Event-level composition of the full 2-D neighborhood exchange.

The marching multicast runs a horizontal stage (each tile's atom record
moves b hops left and right along its row) followed by a vertical stage
(the accumulated (2b+1)-record row segment moves b hops up and down each
column).  :class:`ExchangeFabric2D` composes the per-row and per-column
chain simulations of :mod:`repro.wse.fabric` and checks, wavelet by
wavelet, that every tile ends up holding exactly its (2b+1)^2 - 1
candidate neighborhood — the property the lockstep machine's shift-based
exchange assumes.

This is the slow, exact reference; it exists to validate the schedule
and the closed-form cycle model (their equality is asserted in tests),
not to run production workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wse.fabric import ChainFabric
from repro.wse.geometry import TileGrid
from repro.wse.multicast import stage_cycles

__all__ = ["ExchangeFabric2D", "Exchange2DResult"]


@dataclass
class Exchange2DResult:
    """Outcome of a full 2-D exchange simulation.

    Attributes
    ----------
    horizontal_cycles, vertical_cycles:
        Measured stage durations (max over rows / columns and both
        directions).
    neighborhoods:
        Per-tile sets of flat source-tile indices received.
    """

    horizontal_cycles: int
    vertical_cycles: int
    neighborhoods: list[set[int]]

    @property
    def total_cycles(self) -> int:
        """Exchange duration: the stages are sequential."""
        return self.horizontal_cycles + self.vertical_cycles


class ExchangeFabric2D:
    """Wavelet-level 2-D candidate exchange on an ``nx x ny`` grid."""

    def __init__(self, grid: TileGrid, b: int, vector_len: int = 3) -> None:
        if b < 1:
            raise ValueError(f"b must be >= 1, got {b}")
        if 2 * b + 1 > min(grid.nx, grid.ny):
            raise ValueError(
                f"neighborhood 2b+1={2 * b + 1} exceeds grid "
                f"{grid.nx}x{grid.ny}"
            )
        self.grid = grid
        self.b = b
        self.vector_len = vector_len

    def _chain_sources(self, n: int) -> tuple[int, list[list[int]]]:
        """Sources gathered by each position of an n-tile bidirectional chain."""
        pos = ChainFabric(n, self.b, self.vector_len).run()
        neg = ChainFabric(n, self.b, self.vector_len).run()
        sources: list[list[int]] = []
        for t in range(n):
            left = pos.sources_for(t)
            mirrored = n - 1 - t
            right = [n - 1 - s for s in neg.sources_for(mirrored)]
            sources.append(left + right)
        return max(pos.cycles, neg.cycles), sources

    def run(self) -> Exchange2DResult:
        """Simulate both stages and collect per-tile neighborhoods."""
        g = self.grid
        # Horizontal: every row runs the same schedule; simulate one
        # chain per distinct length (all rows share g.nx).
        h_cycles, row_sources = self._chain_sources(g.nx)

        # After the horizontal stage each tile holds its own atom plus
        # the row segment from up to b tiles left and right.
        segment: list[list[int]] = []
        for x in range(g.nx):
            for y in range(g.ny):
                seg = [int(g.flatten(x, y))]
                seg += [int(g.flatten(sx, y)) for sx in row_sources[x]]
                segment.append(seg)

        # Vertical: the payload is the whole row segment — vector
        # length (2b+1) * L in the interior (edge tiles carry less; the
        # schedule is sized by the interior worst case).
        v_vector = (2 * self.b + 1) * self.vector_len
        v_sim = ChainFabric(g.ny, self.b, v_vector).run()
        v_neg = ChainFabric(g.ny, self.b, v_vector).run()
        v_cycles = max(v_sim.cycles, v_neg.cycles)
        col_sources: list[list[int]] = []
        for t in range(g.ny):
            down = v_sim.sources_for(t)
            mirrored = g.ny - 1 - t
            up = [g.ny - 1 - s for s in v_neg.sources_for(mirrored)]
            col_sources.append(down + up)

        neighborhoods: list[set[int]] = []
        for x in range(g.nx):
            for y in range(g.ny):
                held: set[int] = set(segment[g.flatten(x, y)])
                for sy in col_sources[y]:
                    held.update(segment[g.flatten(x, sy)])
                held.discard(int(g.flatten(x, y)))
                neighborhoods.append(held)
        return Exchange2DResult(
            horizontal_cycles=h_cycles,
            vertical_cycles=v_cycles,
            neighborhoods=neighborhoods,
        )

    def expected_cycles(self) -> int:
        """The closed-form model this simulation must reproduce."""
        return stage_cycles(self.vector_len, self.b) + stage_cycles(
            (2 * self.b + 1) * self.vector_len, self.b
        )
