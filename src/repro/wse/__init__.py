"""Wafer-Scale Engine substrate simulator.

Two fidelity levels (DESIGN.md):

* **Event/cycle level** — :mod:`repro.wse.fabric` simulates routers,
  per-virtual-channel links and the marching-multicast state machine
  (paper Fig. 3/4) wavelet by wavelet.  Used at small scale to validate
  the communication schedule: exactly-once delivery, zero link
  contention, and the analytic cycle count.
* **Analytic schedule level** — :mod:`repro.wse.multicast` computes the
  cycle cost of a neighborhood exchange in closed form, calibrated
  against the event simulator.  The lockstep machine
  (:mod:`repro.core.wse_md`) uses this for full-scale cycle accounting.
"""

from repro.wse.machine import WSE2, MachineConfig
from repro.wse.geometry import TileGrid
from repro.wse.wavelet import Wavelet, WaveletKind, RouterCommand
from repro.wse.router import MarchingRouter, RouterState
from repro.wse.multicast import MarchingMulticastSchedule, exchange_cycle_model
from repro.wse.fabric import ChainFabric, MulticastChainSim
from repro.wse.fabric2d import ExchangeFabric2D
from repro.wse.tile import TileCoreModel, SramBudget
from repro.wse.trace import CycleTrace

__all__ = [
    "WSE2",
    "MachineConfig",
    "TileGrid",
    "Wavelet",
    "WaveletKind",
    "RouterCommand",
    "MarchingRouter",
    "RouterState",
    "MarchingMulticastSchedule",
    "exchange_cycle_model",
    "ChainFabric",
    "MulticastChainSim",
    "ExchangeFabric2D",
    "TileCoreModel",
    "SramBudget",
    "CycleTrace",
]
