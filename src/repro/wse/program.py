"""Per-tile program model: threads, vector moves, task activation.

The paper's neighborhood exchange runs as *four parallel threads* per
core — one send and one receive thread per virtual channel (positive
and negative direction), each programmed with a single vector move
instruction (Sec. III-B, Fig. 4c).  Hardware schedules threads
cycle-by-cycle: a thread advances when its stream has data/credit, and
the datapath is granted to one ready thread per cycle.

This module models that execution: :class:`VectorMove` operations over
memory/fabric streams, :class:`TileProgram` holding the thread set, and
a cooperative cycle-level scheduler.  It validates two properties the
cycle model assumes:

* the four exchange threads *overlap*: total exchange occupancy is set
  by link availability, not by the sum of thread lengths;
* send threads emit one word per cycle while the outgoing link has
  credit, and receive threads never lose data.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field

__all__ = [
    "StreamKind",
    "VectorMove",
    "TileProgram",
    "ProgramRunResult",
    "exchange_program",
]


class StreamKind(enum.Enum):
    """Where a vector move's operand lives."""

    MEMORY = "memory"
    FABRIC_TX = "fabric_tx"
    FABRIC_RX = "fabric_rx"


@dataclass
class VectorMove:
    """One vector move instruction: N words between two streams.

    The hardware expresses sends as memory->fabric moves and receives
    as fabric->memory moves, with the stream descriptor carrying the
    length and access pattern (Sec. IV-A).
    """

    name: str
    src: StreamKind
    dst: StreamKind
    length: int
    moved: int = 0

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError(f"{self.name}: negative vector length")
        if (self.src is StreamKind.FABRIC_RX) == (
            self.dst is StreamKind.FABRIC_TX
        ) and self.src is not StreamKind.MEMORY:
            raise ValueError(
                f"{self.name}: moves must touch memory on one side"
            )

    @property
    def done(self) -> bool:
        """All words moved."""
        return self.moved >= self.length

    @property
    def is_send(self) -> bool:
        """Memory -> fabric."""
        return self.dst is StreamKind.FABRIC_TX


@dataclass
class ProgramRunResult:
    """Outcome of running a tile program to completion.

    Attributes
    ----------
    cycles:
        Total cycles until every thread finished.
    busy_cycles:
        Cycles in which at least one thread advanced.
    per_thread_active:
        Cycles each thread spent moving data.
    """

    cycles: int
    busy_cycles: int
    per_thread_active: dict[str, int]

    @property
    def overlap_factor(self) -> float:
        """Sum of thread activity over wall cycles (1.0 = no overlap)."""
        total = sum(self.per_thread_active.values())
        return total / self.cycles if self.cycles else 0.0


class TileProgram:
    """A set of vector-move threads executed by the hardware scheduler.

    The model grants every *ready* thread one word per cycle — matching
    the WSE, where each of the router's five ports moves a word per
    cycle independently and the core's datapath services stream moves
    without software arbitration.  Readiness:

    * send threads need link credit (``tx_credit`` per cycle per VC);
    * receive threads need an arrived word (fed by ``rx_arrivals``).
    """

    def __init__(self, moves: list[VectorMove]) -> None:
        names = [m.name for m in moves]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate thread names: {names}")
        self.moves = moves

    def run(
        self,
        *,
        rx_words: dict[str, int] | None = None,
        rx_rate: float = 1.0,
        max_cycles: int = 1_000_000,
    ) -> ProgramRunResult:
        """Execute to completion.

        ``rx_words`` caps how many words will ever arrive for each
        receive thread (defaults to the thread's full length);
        ``rx_rate`` is the average arrival rate in words/cycle.
        """
        rx_words = rx_words or {}
        arrivals: dict[str, float] = {m.name: 0.0 for m in self.moves}
        active = {m.name: 0 for m in self.moves}
        cycles = 0
        busy = 0
        while not all(m.done for m in self.moves):
            if cycles >= max_cycles:
                raise RuntimeError(
                    f"tile program stuck after {max_cycles} cycles: "
                    f"{[(m.name, m.moved, m.length) for m in self.moves]}"
                )
            progressed = False
            for m in self.moves:
                if m.done:
                    continue
                if m.is_send:
                    m.moved += 1  # link credit modeled as always granted
                    active[m.name] += 1
                    progressed = True
                else:
                    limit = rx_words.get(m.name, m.length)
                    arrivals[m.name] = min(
                        arrivals[m.name] + rx_rate, float(limit)
                    )
                    if arrivals[m.name] >= m.moved + 1:
                        m.moved += 1
                        active[m.name] += 1
                        progressed = True
                    elif m.moved >= limit:
                        # nothing more will ever arrive: terminate short
                        m.length = m.moved
            cycles += 1
            if progressed:
                busy += 1
        return ProgramRunResult(
            cycles=cycles, busy_cycles=busy, per_thread_active=active
        )


def exchange_program(b: int, vector_len: int) -> TileProgram:
    """The four-thread neighborhood-exchange program of Fig. 4c.

    Two virtual channels per stage (positive / negative direction),
    one send and one receive thread each.  Send vectors carry this
    tile's record; receive vectors accumulate ``b`` neighbors' records.
    """
    if b < 1 or vector_len < 1:
        raise ValueError(f"bad exchange geometry: b={b}, L={vector_len}")
    return TileProgram([
        VectorMove("send_pos", StreamKind.MEMORY, StreamKind.FABRIC_TX,
                   vector_len),
        VectorMove("send_neg", StreamKind.MEMORY, StreamKind.FABRIC_TX,
                   vector_len),
        VectorMove("recv_pos", StreamKind.FABRIC_RX, StreamKind.MEMORY,
                   b * vector_len),
        VectorMove("recv_neg", StreamKind.FABRIC_RX, StreamKind.MEMORY,
                   b * vector_len),
    ])
