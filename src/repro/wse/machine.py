"""Machine configurations (paper Sec. IV-A).

The WSE-2 numbers: ~850,000 cores on a ~920 x 920 mesh, 48 kB SRAM per
tile, 40 GB total, 23 kW, 1.45 PFLOP/s FP32 peak (Table IV).  The clock
follows from the peak: each 64-bit datapath retires two FP32 operations
per cycle, so ``clock = peak / (cores * 2)`` — about 853 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineConfig", "WSE2"]


@dataclass(frozen=True)
class MachineConfig:
    """Static description of a wafer-scale machine.

    Attributes
    ----------
    name:
        Human-readable model name.
    grid_x, grid_y:
        Mesh dimensions in tiles.
    usable_cores:
        Cores available to applications (slightly fewer than the full
        mesh because of spare rows used for defect repair).
    sram_per_tile:
        Bytes of local memory per tile.
    power_watts:
        Whole-system power draw.
    peak_flops_fp32:
        Peak FP32 FLOP/s of the whole wafer.
    fp32_per_cycle:
        FP32 operations per core per cycle (the 64-bit datapath does 2).
    io_bandwidth_bits:
        Off-wafer I/O bandwidth in bits/s (Sec. VI-C: 1.2 Tb/s).
    """

    name: str
    grid_x: int
    grid_y: int
    usable_cores: int
    sram_per_tile: int
    power_watts: float
    peak_flops_fp32: float
    fp32_per_cycle: int = 2
    io_bandwidth_bits: float = 1.2e12

    def __post_init__(self) -> None:
        if self.usable_cores > self.grid_x * self.grid_y:
            raise ValueError(
                f"usable cores {self.usable_cores} exceed mesh "
                f"{self.grid_x}x{self.grid_y}"
            )

    @property
    def clock_hz(self) -> float:
        """Core clock implied by peak FLOP rate."""
        return self.peak_flops_fp32 / (self.usable_cores * self.fp32_per_cycle)

    @property
    def cycle_ns(self) -> float:
        """One clock period in nanoseconds."""
        return 1.0e9 / self.clock_hz

    @property
    def peak_flops_per_core(self) -> float:
        """Per-core FP32 peak (FLOP/s)."""
        return self.clock_hz * self.fp32_per_cycle

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall seconds."""
        return cycles / self.clock_hz


#: The CS-2 system the paper benchmarks (Table IV row "CS-2").
WSE2 = MachineConfig(
    name="WSE-2 (CS-2)",
    grid_x=920,
    grid_y=925,
    usable_cores=850_000,
    sram_per_tile=48 * 1024,
    power_watts=23_000.0,
    peak_flops_fp32=1.45e15,
)
