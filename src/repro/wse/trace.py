"""Cycle tracing and stability statistics (paper Sec. IV-B type 2, V-B).

The paper's controlled measurements record a hardware cycle counter at
the end of every timestep on every tile, then report two stabilities:
the per-tile standard deviation of timestep time (0.11 %), and the
standard deviation of the *array-averaged* timestep time (91 ppm).
:class:`CycleTrace` reproduces both reductions from per-tile,
per-timestep cycle samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CycleTrace", "StabilityReport"]


@dataclass(frozen=True)
class StabilityReport:
    """Timestep-time stability in the paper's two senses.

    Attributes
    ----------
    mean_cycles:
        Mean timestep duration across all tiles and steps.
    per_tile_std:
        Standard deviation of per-tile timestep samples.
    per_tile_rel:
        ``per_tile_std / mean_cycles`` (the paper reports 0.11 %).
    array_avg_std:
        Standard deviation of per-step array-averaged durations.
    array_avg_rel:
        ``array_avg_std / mean_cycles`` (the paper reports 91 ppm).
    """

    mean_cycles: float
    per_tile_std: float
    per_tile_rel: float
    array_avg_std: float
    array_avg_rel: float


class CycleTrace:
    """Accumulates per-tile cycle counts for each timestep."""

    def __init__(self, n_tiles: int) -> None:
        if n_tiles < 1:
            raise ValueError(f"need at least one tile, got {n_tiles}")
        self.n_tiles = n_tiles
        self._steps: list[np.ndarray] = []
        self._candidates: list[np.ndarray] = []
        self._interactions: list[np.ndarray] = []

    def record(
        self,
        per_tile_cycles: np.ndarray,
        n_candidates: np.ndarray | None = None,
        n_interactions: np.ndarray | None = None,
    ) -> None:
        """Record one timestep's per-tile cycle counts.

        When the per-tile candidate and interaction counts are supplied
        as well, the trace can later be regressed against the paper's
        linear step model (:meth:`count_samples`); counts must then be
        provided for *every* recorded step.
        """
        arr = self._tile_array(per_tile_cycles)
        if (n_candidates is None) != (n_interactions is None):
            raise ValueError(
                "candidate and interaction counts must be given together"
            )
        if n_candidates is None:
            if self._candidates:
                raise ValueError(
                    "this trace records work counts; every step needs them"
                )
        else:
            if self._steps and not self._candidates:
                raise ValueError(
                    "earlier steps were recorded without work counts"
                )
            self._candidates.append(self._tile_array(n_candidates))
            self._interactions.append(self._tile_array(n_interactions))
        self._steps.append(arr)

    def _tile_array(self, values) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.shape != (self.n_tiles,):
            raise ValueError(
                f"expected {self.n_tiles} tile samples, got {arr.shape}"
            )
        return arr

    @property
    def has_counts(self) -> bool:
        """True when every recorded step carries its work counts."""
        return bool(self._steps) and len(self._candidates) == len(self._steps)

    def count_samples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(cycles, n_candidates, n_interactions)``, each (n_steps, n_tiles).

        The raw material of the Table II regression: one sample per
        tile per timestep, cycles alongside the work counts that step
        charged the tile for.
        """
        if not self.has_counts:
            raise RuntimeError("no work counts recorded with this trace")
        return (
            np.stack(self._steps),
            np.stack(self._candidates),
            np.stack(self._interactions),
        )

    @property
    def n_steps(self) -> int:
        """Number of recorded timesteps."""
        return len(self._steps)

    def as_array(self) -> np.ndarray:
        """Samples as (n_steps, n_tiles)."""
        if not self._steps:
            raise RuntimeError("no timesteps recorded")
        return np.stack(self._steps)

    def step_cycles(self, *, reduce: str = "max") -> np.ndarray:
        """Per-step machine timestep duration.

        Tiles are locally synchronized by each neighborhood exchange, so
        the machine's step time is governed by the slowest tile
        (``reduce="max"``); ``"mean"`` gives the array average used in
        the stability analysis.
        """
        data = self.as_array()
        if reduce == "max":
            return data.max(axis=1)
        if reduce == "mean":
            return data.mean(axis=1)
        raise ValueError(f"unknown reduce {reduce!r}")

    def total_cycles(self) -> float:
        """Whole-run cycle count (sum of per-step maxima)."""
        return float(self.step_cycles(reduce="max").sum())

    def stability(self) -> StabilityReport:
        """Both of the paper's stability statistics."""
        data = self.as_array()
        mean = float(data.mean())
        per_tile_std = float(data.std())
        array_avg = data.mean(axis=1)
        array_avg_std = float(array_avg.std())
        return StabilityReport(
            mean_cycles=mean,
            per_tile_std=per_tile_std,
            per_tile_rel=per_tile_std / mean if mean else 0.0,
            array_avg_std=array_avg_std,
            array_avg_rel=array_avg_std / mean if mean else 0.0,
        )
