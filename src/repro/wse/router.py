"""Marching-multicast router state machine (paper Fig. 4).

Logically a router in the systolic pipeline is in one of three roles —
*head* (accepts data from its local core and forwards it downstream),
*body* (receives from upstream, delivers to its core and forwards), or
*tail* (receives and delivers only).  The hardware cannot change a
router's input and output side in one transition, so the real machine
uses four states; we model the fourth as ``BODY_NEXT``, the body tile
adjacent to the head, which is the one that will react to the head's
"advance" and become the next head.

State changes are driven by command wavelets carrying a *list* of
router commands.  Each router reacts to the first command in the list
and pops it before forwarding (the configuration the paper describes in
Sec. III-B); the wavelet dies when its list empties, which is exactly at
the old tail.  The head constructs the list so that position in the
chain selects the new role:

    [TO_HEAD, TO_BODY_NEXT, TO_BODY, ..., TO_BODY(=RESET)]
      |            |                          |
      next tile    the one after              old tail (wavelet dropped)

and transitions itself to TAIL after emitting (it becomes the tail of
the *previous* strip's new head).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.wse.wavelet import RouterCommand, Wavelet, WaveletKind

__all__ = ["RouterState", "MarchingRouter", "advance_command_list"]


class RouterState(enum.Enum):
    """Role of a router within the systolic multicast pipeline."""

    HEAD = "head"
    BODY_NEXT = "body_next"  # first body: reacts to ADVANCE
    BODY = "body"
    TAIL = "tail"
    IDLE = "idle"  # outside any active multicast domain (fabric edge)


#: Commands that set an explicit new state ("advance" in the paper is
#: the transition to the next role; "reset" is the return to body).
_STATE_FOR_COMMAND = {
    RouterCommand.ADVANCE: None,  # interpreted against current state
    RouterCommand.RESET: RouterState.BODY,
}


def advance_command_list(b: int) -> list[RouterCommand]:
    """Command list the head emits after its vector (length ``b``).

    Position in the list encodes the receiving tile's new role: the
    first downstream tile advances (to head), all later receivers reset
    to body.  The b-th receiver (the old tail) pops the final command
    and the emptied wavelet is dropped there.
    """
    if b < 1:
        raise ValueError(f"multicast depth b must be >= 1, got {b}")
    return [RouterCommand.ADVANCE] + [RouterCommand.RESET] * (b - 1)


@dataclass
class MarchingRouter:
    """Per-virtual-channel router state for the marching multicast.

    Attributes
    ----------
    state:
        Current role.
    delivered:
        Data payloads delivered to the local core, in arrival order —
        the deterministic candidate order the neighbor-list step relies
        on (Sec. III-C).
    """

    state: RouterState = RouterState.BODY
    delivered: list[Wavelet] = field(default_factory=list)

    def route(self, wavelet: Wavelet, *, from_core: bool) -> tuple[list[Wavelet], bool]:
        """Process one incoming wavelet.

        Parameters
        ----------
        wavelet:
            The arriving message.
        from_core:
            True when the local core injected it (only legal for HEAD).

        Returns
        -------
        (downstream, deliver):
            Wavelets to forward downstream this cycle, and whether the
            payload was delivered to the local core.
        """
        if wavelet.kind is WaveletKind.DATA:
            return self._route_data(wavelet, from_core)
        if from_core:
            # command wavelets from the local core (the head ending its
            # transmission) are forwarded untouched; the head itself
            # transitions via finish_transmission().
            return [wavelet], False
        return self._route_command(wavelet)

    def _route_data(
        self, wavelet: Wavelet, from_core: bool
    ) -> tuple[list[Wavelet], bool]:
        if from_core:
            if self.state is not RouterState.HEAD:
                raise RuntimeError(
                    f"core injected data while router is {self.state.value}; "
                    "only the head may transmit"
                )
            return [wavelet], False
        if self.state in (RouterState.BODY, RouterState.BODY_NEXT):
            self.delivered.append(wavelet)
            return [wavelet], True
        if self.state is RouterState.TAIL:
            self.delivered.append(wavelet)
            return [], True
        raise RuntimeError(
            f"data wavelet arrived from upstream at a {self.state.value} router"
        )

    def _route_command(self, wavelet: Wavelet) -> tuple[list[Wavelet], bool]:
        cmd = wavelet.commands[0]
        if cmd is RouterCommand.ADVANCE:
            self._apply_advance()
        elif cmd is RouterCommand.RESET:
            self._apply_reset()
        if len(wavelet.commands) == 1:
            return [], False  # wavelet consumed at the old tail
        return [wavelet.popped()], False

    def _apply_advance(self) -> None:
        if self.state is RouterState.BODY_NEXT:
            self.state = RouterState.HEAD
        elif self.state is RouterState.TAIL:
            # b == 1 degenerate chain: the tail is also next in line.
            self.state = RouterState.HEAD
        else:
            raise RuntimeError(
                f"ADVANCE reached a {self.state.value} router; the command "
                "list is mis-sized for this chain"
            )

    def _apply_reset(self) -> None:
        if self.state is RouterState.TAIL:
            self.state = RouterState.BODY
        elif self.state is RouterState.BODY:
            # mid-body stays body; the first of them becomes next-in-line
            pass
        else:
            raise RuntimeError(f"RESET reached a {self.state.value} router")

    def finish_transmission(self) -> None:
        """Head -> tail transition after emitting its vector + command."""
        if self.state is not RouterState.HEAD:
            raise RuntimeError(
                f"finish_transmission on a {self.state.value} router"
            )
        self.state = RouterState.TAIL

    def promote_body_next(self) -> None:
        """Mark this body as next in line (the tile after a new head)."""
        if self.state is RouterState.BODY:
            self.state = RouterState.BODY_NEXT
