"""Event-driven (cycle-level) fabric simulation of the marching multicast.

Simulates one direction of one stage on a chain of tiles: every tile
must transmit its ``vector_len``-word atom record to the ``b`` tiles
downstream, using the systolic schedule of paper Fig. 3d-f / Fig. 4a.
Links carry one wavelet per cycle per virtual channel with one cycle of
latency per hop; any attempt to place two wavelets on a link in the same
cycle is a detected error (the schedule's whole point is that this never
happens).

The 2-D neighborhood exchange composes four of these runs — positive
and negative horizontal (vector ``L``), then positive and negative
vertical (vector ``(2b+1) L``) — on separate virtual channels; opposite
directions run concurrently, so the exchange time is the sum of the two
stage times (:mod:`repro.wse.multicast` provides the closed form, which
tests assert equals this simulator's measurement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wse.router import (
    MarchingRouter,
    RouterState,
    advance_command_list,
)
from repro.wse.wavelet import Wavelet, WaveletKind

__all__ = ["ChainFabric", "MulticastChainSim", "ChainResult"]


@dataclass
class ChainResult:
    """Outcome of one chain-stage simulation.

    Attributes
    ----------
    cycles:
        Total cycles until the fabric drained.
    received:
        Per-tile list of (source tile, word index) in arrival order.
    link_busy_cycles:
        Total link-cycle occupancy (for bandwidth accounting).
    """

    cycles: int
    received: list[list[tuple[int, int]]]
    link_busy_cycles: int

    def sources_for(self, tile: int) -> list[int]:
        """Distinct source tiles whose data reached ``tile``, in order."""
        seen: list[int] = []
        for src, _ in self.received[tile]:
            if src not in seen:
                seen.append(src)
        return seen


class ChainFabric:
    """One direction of a marching-multicast stage on an ``n``-tile chain."""

    def __init__(self, n_tiles: int, b: int, vector_len: int) -> None:
        if n_tiles < 2:
            raise ValueError(f"need at least 2 tiles, got {n_tiles}")
        if b < 1:
            raise ValueError(f"b must be >= 1, got {b}")
        if b >= n_tiles:
            raise ValueError(f"b={b} must be smaller than the chain ({n_tiles})")
        if vector_len < 1:
            raise ValueError(f"vector length must be >= 1, got {vector_len}")
        self.n = n_tiles
        self.b = b
        self.vector_len = vector_len
        self.routers = [MarchingRouter() for _ in range(n_tiles)]
        period = b + 1
        for t in range(n_tiles):
            r = t % period
            if r == 0:
                self.routers[t].state = RouterState.HEAD
            elif r == 1 and b >= 2:
                self.routers[t].state = RouterState.BODY_NEXT
            elif r == b:
                self.routers[t].state = RouterState.TAIL
            else:
                self.routers[t].state = RouterState.BODY
        # transmission progress per tile: words sent so far, -1 = done
        self._sent = [0] * n_tiles
        self._command_sent = [False] * n_tiles

    def run(self, max_cycles: int | None = None) -> ChainResult:
        """Drive the fabric to completion; returns delivery + cycle stats."""
        limit = max_cycles or (self.b + 2) * (self.vector_len + 4) * 4 + 64
        # wavelets in flight: arriving[t] is the wavelet reaching tile t
        # at the *start* of the current cycle (link latency = 1).
        arriving: dict[int, Wavelet] = {}
        received: list[list[tuple[int, int]]] = [[] for _ in range(self.n)]
        link_busy = 0
        cycle = 0
        while cycle < limit:
            next_arriving: dict[int, Wavelet] = {}

            def send_downstream(tile: int, wavelet: Wavelet) -> None:
                nonlocal link_busy
                dest = tile + 1
                if dest >= self.n:
                    return  # falls off the fabric edge
                if dest in next_arriving:
                    raise RuntimeError(
                        f"link contention: tiles {tile} and others drive the "
                        f"link into {dest} at cycle {cycle}"
                    )
                next_arriving[dest] = wavelet
                link_busy += 1

            # 1. routers process arrivals.
            became_head: set[int] = set()
            for tile in sorted(arriving):
                w = arriving[tile]
                router = self.routers[tile]
                was_head = router.state is RouterState.HEAD
                arrived_len = len(w.commands) if w.is_command else 0
                out, delivered = router.route(w, from_core=False)
                if router.state is RouterState.HEAD and not was_head:
                    became_head.add(tile)
                if delivered:
                    received[tile].append((w.src, w.seq))
                for o in out:
                    send_downstream(tile, o)
                # A RESET arriving with a full-minus-one command list marks
                # the tile adjacent to the new head: promote to BODY_NEXT
                # (the hardware encodes this in its fourth router state).
                if (
                    w.is_command
                    and self.b >= 2
                    and arrived_len == self.b - 1
                    and router.state is RouterState.BODY
                ):
                    router.promote_body_next()

            # 2. heads inject (one word per cycle).  A tile promoted this
            # cycle starts transmitting on the next one (its router just
            # finished carrying the command wavelet on the same link).
            for tile in range(self.n):
                router = self.routers[tile]
                if router.state is not RouterState.HEAD or tile in became_head:
                    continue
                if self._sent[tile] < self.vector_len:
                    w = Wavelet(
                        kind=WaveletKind.DATA,
                        vc=0,
                        src=tile,
                        seq=self._sent[tile],
                    )
                    out, _ = router.route(w, from_core=True)
                    for o in out:
                        send_downstream(tile, o)
                    self._sent[tile] += 1
                elif not self._command_sent[tile]:
                    w = Wavelet(
                        kind=WaveletKind.COMMAND,
                        vc=0,
                        src=tile,
                        commands=advance_command_list(self.b),
                    )
                    out, _ = router.route(w, from_core=True)
                    for o in out:
                        send_downstream(tile, o)
                    self._command_sent[tile] = True
                    router.finish_transmission()

            cycle += 1
            arriving = next_arriving
            if not arriving and all(self._command_sent):
                break
        else:
            raise RuntimeError(
                f"fabric did not drain within {limit} cycles; schedule stuck"
            )
        return ChainResult(
            cycles=cycle, received=received, link_busy_cycles=link_busy
        )


class MulticastChainSim:
    """Both directions of one stage (separate virtual channels).

    Opposite directions use disjoint links (each mesh link is
    full-duplex) and disjoint VCs, so they run concurrently: the stage
    time is the max of the two runs.  The negative direction is
    simulated by running a mirrored chain.
    """

    def __init__(self, n_tiles: int, b: int, vector_len: int) -> None:
        self.n = n_tiles
        self.b = b
        self.vector_len = vector_len

    def run(self) -> tuple[int, list[list[int]]]:
        """Returns (stage cycles, per-tile ordered source lists)."""
        pos = ChainFabric(self.n, self.b, self.vector_len).run()
        neg = ChainFabric(self.n, self.b, self.vector_len).run()
        sources: list[list[int]] = []
        for t in range(self.n):
            left = pos.sources_for(t)  # data moving +x: sources to the left
            mirrored = self.n - 1 - t
            right = [self.n - 1 - s for s in neg.sources_for(mirrored)]
            sources.append(left + right)
        return max(pos.cycles, neg.cycles), sources
