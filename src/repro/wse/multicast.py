"""Closed-form cycle model of the marching-multicast exchange.

Derived from the systolic schedule (and asserted, in tests, to equal the
event-driven simulator's measured cycle counts):

* A stage moves every tile's ``L``-word vector ``b`` hops in one
  direction.  Heads transmit in ``b + 1`` phases; consecutive phases are
  pipelined with a start-to-start period of ``L + 2`` cycles (L data
  words, one command wavelet, one hop of latency to arm the next head).
  After the last phase the final words and the command drain through
  ``b`` hops:

      T_stage(L, b) = b (L + 2) + L + b + 1.

* Opposite directions use separate virtual channels over full-duplex
  links and run concurrently; a full stage costs ``T_stage`` (the max of
  two equal runs).

* The 2-D exchange runs the horizontal stage with the atom record
  (``L`` words) and then the vertical stage with the accumulated row
  segment (``(2b+1) L`` words):

      T_exchange(L, b) = T_stage(L, b) + T_stage((2b+1) L, b).

The per-timestep exchange uses this twice — positions (3 words) early in
the step, embedding derivatives (1 word) after the density pass — which
is the "6 ns per candidate" multicast attribution of paper Table V.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MarchingMulticastSchedule", "stage_cycles", "exchange_cycle_model"]


def stage_cycles(vector_len: int, b: int) -> int:
    """Cycles for one direction-pair stage moving ``vector_len`` words ``b`` hops."""
    if vector_len < 1:
        raise ValueError(f"vector length must be >= 1, got {vector_len}")
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    return b * (vector_len + 2) + vector_len + b + 1


def exchange_cycle_model(vector_len: int, b: int) -> int:
    """Cycles for a full (2b+1)-square neighborhood exchange."""
    horizontal = stage_cycles(vector_len, b)
    vertical = stage_cycles((2 * b + 1) * vector_len, b)
    return horizontal + vertical


def exchange_data_words(vector_len: int, b: int, *, pbc: bool = False) -> int:
    """Link-words of traffic per tile for one neighborhood exchange.

    Horizontal stage: each vector travels ``b`` hops in each direction
    (``2 b L`` link-words per tile); vertical stage ships the
    accumulated ``(2b+1) L`` row segment the same way.  Periodic
    boundaries interleave the folded halves, so logical neighbors sit
    two hops apart and the transferred volume doubles (Sec. V-F) —
    while the transfer *time* is unchanged, because the doubled load
    rides the reverse direction of the full-duplex links
    (:func:`exchange_cycle_model` is deliberately pbc-independent).
    """
    if vector_len < 1 or b < 1:
        raise ValueError(f"bad exchange geometry: L={vector_len}, b={b}")
    horizontal = 2 * b * vector_len
    vertical = 2 * b * (2 * b + 1) * vector_len
    words = horizontal + vertical
    return 2 * words if pbc else words


@dataclass(frozen=True)
class MarchingMulticastSchedule:
    """Static description of one stage's schedule.

    Useful for reasoning about roles: at phase ``p`` the head of each
    strip sits at column ``strip_start + p``; roles are fixed by column
    residue mod ``b + 1``.
    """

    b: int

    def __post_init__(self) -> None:
        if self.b < 1:
            raise ValueError(f"b must be >= 1, got {self.b}")

    @property
    def n_phases(self) -> int:
        """Number of transmit phases (b + 1, paper Sec. III-B)."""
        return self.b + 1

    @property
    def strip_width(self) -> int:
        """Width of the non-overlapping vertical strips."""
        return self.b + 1

    def role_at(self, column: int, phase: int) -> str:
        """Role ("head"/"body"/"tail") of a column during a phase."""
        if phase < 0 or phase > self.b:
            raise ValueError(f"phase must be in [0, {self.b}], got {phase}")
        r = (column - phase) % (self.b + 1)
        if r == 0:
            return "head"
        if r == self.b:  # column == head - 1 (mod period): previous head
            return "tail"
        return "body"

    def senders_in_phase(self, phase: int, n_columns: int) -> list[int]:
        """Columns transmitting during ``phase`` (one per strip)."""
        return [
            c for c in range(n_columns) if (c - phase) % (self.b + 1) == 0
        ]

    def link_conflict_free(self, n_columns: int) -> bool:
        """Verify senders in every phase are spaced > b apart.

        Each sender's multicast occupies the ``b`` links to its right;
        spacing of ``b + 1`` means domains tile the row exactly.
        """
        for phase in range(self.n_phases):
            senders = self.senders_in_phase(phase, n_columns)
            if any(
                s2 - s1 <= self.b for s1, s2 in zip(senders, senders[1:])
            ):
                return False
        return True
