"""Wavelets: the fabric's unit of communication (paper Sec. III-B, IV-A).

A wavelet is a single 32-bit message.  Data wavelets carry payload
words of a vector transmission; command wavelets carry a list of router
commands — the marching multicast's "advance"/"reset" control messages
that trigger router state transitions when they arrive (Fig. 4).
Routers can be configured to *react to* and/or *pop* the first command
before forwarding downstream, which is how "advance" reaches exactly the
next tile in line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["WaveletKind", "RouterCommand", "Wavelet"]


class WaveletKind(enum.Enum):
    """Data versus control plane."""

    DATA = "data"
    COMMAND = "command"


class RouterCommand(enum.Enum):
    """Commands carried by marching-multicast control wavelets."""

    ADVANCE = "advance"  # move to the next role in the systolic pipeline
    RESET = "reset"      # return to the body state (end of stage)


@dataclass
class Wavelet:
    """One 32-bit fabric message.

    Attributes
    ----------
    kind:
        Data or command.
    vc:
        Virtual channel (the exchange uses 4: +/- horizontal, +/- vertical).
    src:
        Originating tile's flat index (diagnostic; hardware wavelets
        carry no source, delivery order is the identification mechanism).
    payload:
        For DATA: the word's value (diagnostics).  For COMMAND: unused.
    commands:
        For COMMAND wavelets: the command list, first element is acted
        on / popped by configured routers.
    seq:
        Word index within the vector transmission (diagnostic).
    """

    kind: WaveletKind
    vc: int
    src: int
    payload: float = 0.0
    commands: list[RouterCommand] = field(default_factory=list)
    seq: int = 0

    def __post_init__(self) -> None:
        if self.kind is WaveletKind.COMMAND and not self.commands:
            raise ValueError("command wavelet with an empty command list")

    @property
    def is_command(self) -> bool:
        """True for control-plane wavelets."""
        return self.kind is WaveletKind.COMMAND

    def popped(self) -> "Wavelet":
        """Copy with the first command removed (router 'pop' behaviour)."""
        if not self.is_command:
            raise ValueError("cannot pop commands from a data wavelet")
        return Wavelet(
            kind=self.kind,
            vc=self.vc,
            src=self.src,
            payload=self.payload,
            commands=self.commands[1:],
            seq=self.seq,
        )
