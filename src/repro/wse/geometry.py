"""Tile-grid geometry: coordinates, distances, neighborhoods, strips.

The wafer is a Cartesian mesh; the MD mapping identifies the core array
with the base of the simulation domain so each core has a nominal (x, y)
coordinate (paper Sec. III-A).  Distances between worker cores use the
max norm — a (2b+1)-wide square neighborhood contains exactly the tiles
within max-norm distance b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TileGrid"]


@dataclass(frozen=True)
class TileGrid:
    """A rectangular region of fabric used by one program.

    Attributes
    ----------
    nx, ny:
        Grid dimensions in tiles.
    """

    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise ValueError(f"grid must be at least 1x1, got {self.nx}x{self.ny}")

    @property
    def n_tiles(self) -> int:
        """Total tile count."""
        return self.nx * self.ny

    def contains(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Boolean mask: are (x, y) valid tile coordinates?"""
        x = np.asarray(x)
        y = np.asarray(y)
        return (x >= 0) & (x < self.nx) & (y >= 0) & (y < self.ny)

    def flatten(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Row-major flat tile index."""
        return np.asarray(x) * self.ny + np.asarray(y)

    def unflatten(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`flatten`."""
        idx = np.asarray(idx)
        return idx // self.ny, idx % self.ny

    @staticmethod
    def max_norm_distance(
        x1: np.ndarray, y1: np.ndarray, x2: np.ndarray, y2: np.ndarray
    ) -> np.ndarray:
        """Chebyshev distance between tile coordinates."""
        return np.maximum(
            np.abs(np.asarray(x1) - np.asarray(x2)),
            np.abs(np.asarray(y1) - np.asarray(y2)),
        )

    def neighborhood_offsets(self, b: int, *, include_center: bool = False) -> np.ndarray:
        """Offsets of the (2b+1)^2 square neighborhood, shape (K, 2).

        Ordered by the exchange's arrival order: the horizontal stage
        spreads along x, the vertical stage along y — candidates arrive
        in a deterministic (dy, dx) raster order, which is what makes the
        paper's neighbor list "trivially a list of ordinal numbers"
        (Sec. III-C).
        """
        if b < 0:
            raise ValueError(f"neighborhood half-width must be >= 0, got {b}")
        dys, dxs = np.meshgrid(
            np.arange(-b, b + 1), np.arange(-b, b + 1), indexing="ij"
        )
        offsets = np.stack([dxs.ravel(), dys.ravel()], axis=1)
        if not include_center:
            offsets = offsets[~np.all(offsets == 0, axis=1)]
        return offsets

    def neighborhood(self, cx: int, cy: int, b: int) -> np.ndarray:
        """In-grid tiles of the (2b+1)-square around (cx, cy), shape (M, 2)."""
        offs = self.neighborhood_offsets(b, include_center=True)
        pts = offs + np.array([cx, cy])
        mask = self.contains(pts[:, 0], pts[:, 1])
        return pts[mask]

    def strips(self, width: int) -> list[tuple[int, int]]:
        """Non-overlapping vertical strips [(x_start, x_end), ...).

        The marching multicast partitions the worker grid into strips of
        width ``b + 1`` (paper Sec. III-B); the final strip may be
        narrower at the fabric edge.
        """
        if width < 1:
            raise ValueError(f"strip width must be >= 1, got {width}")
        return [
            (s, min(s + width, self.nx)) for s in range(0, self.nx, width)
        ]
