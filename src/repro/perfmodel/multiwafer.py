"""Multi-wafer weak scaling via ghost regions (paper Table VI / Sec. VI-C).

Each wafer node holds a thin-slab subdomain of ``N_interior = X^2 Z``
lattice sites plus an aliased ghost shell of width ``lambda`` lattice
units: ``N_atom = (X + 2 lambda)^2 Z``.  Each timestep invalidates the
outermost ``2 r_cut``-wide strip of ghosts, so a node runs

    k = floor(lambda * r_lattice / (2 r_cut))

timesteps per *period* before refreshing all ghosts (192 bits each) over
the inter-node links:

    t_period = k * t_wall + tau + 192 * N_ghost / omega.

The paper's published Table VI numbers correspond to ghost transmission
fully overlapped with computation (ghost data for the next period
streams in while the current period computes), leaving only the
latency ``tau`` exposed; both the overlapped and serialized variants are
available here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MultiWaferModel", "MultiWaferPoint"]


@dataclass(frozen=True)
class MultiWaferPoint:
    """Modeled performance of one (element, lambda) configuration."""

    element: str
    x_sites: int
    z_sites: int
    lam: int
    cutoff_per_lattice: float
    t_wall_us: float
    k_steps: int
    n_interior: int
    n_atom: int
    n_ghost: int
    rate_steps_per_s: float
    fraction_of_single_wafer: float
    interior_fraction: float


@dataclass(frozen=True)
class MultiWaferModel:
    """Inter-node parameters (paper: omega = 1.2 Tb/s, tau = 2 us)."""

    bandwidth_bits_per_s: float = 1.2e12
    latency_s: float = 2.0e-6
    ghost_bits: int = 192  # position + velocity per ghost atom
    overlap_transfers: bool = True

    def evaluate(
        self,
        element: str,
        x_sites: int,
        z_sites: int,
        lam: int,
        cutoff_per_lattice: float,
        t_wall_s: float,
        single_wafer_rate: float,
    ) -> MultiWaferPoint:
        """Model one Table VI cell."""
        if min(x_sites, z_sites, lam) < 1:
            raise ValueError(
                f"sites/lambda must be positive: {x_sites}, {z_sites}, {lam}"
            )
        if cutoff_per_lattice <= 0 or t_wall_s <= 0:
            raise ValueError("cutoff ratio and t_wall must be positive")
        k = int(lam / (2.0 * cutoff_per_lattice))
        if k < 1:
            raise ValueError(
                f"ghost width lambda={lam} yields zero usable steps at "
                f"r_cut/r_lattice={cutoff_per_lattice}"
            )
        n_interior = x_sites * x_sites * z_sites
        n_atom = (x_sites + 2 * lam) ** 2 * z_sites
        n_ghost = n_atom - n_interior
        transfer = self.ghost_bits * n_ghost / self.bandwidth_bits_per_s
        compute = k * t_wall_s
        if self.overlap_transfers:
            # Ghost refreshes are double-buffered: the next period's
            # ghost data streams in while the current period computes,
            # leaving only the inter-node latency exposed.  This is the
            # assumption under which the paper's published Table VI
            # fractions (92-99% of single-wafer) reproduce exactly; the
            # serialized variant below exposes the full transfer.
            exposed = self.latency_s
        else:
            exposed = self.latency_s + transfer
        t_period = compute + exposed
        rate = k / t_period
        return MultiWaferPoint(
            element=element,
            x_sites=x_sites,
            z_sites=z_sites,
            lam=lam,
            cutoff_per_lattice=cutoff_per_lattice,
            t_wall_us=t_wall_s * 1e6,
            k_steps=k,
            n_interior=n_interior,
            n_atom=n_atom,
            n_ghost=n_ghost,
            rate_steps_per_s=rate,
            fraction_of_single_wafer=rate / single_wafer_rate,
            interior_fraction=n_interior / n_atom,
        )

    def cluster_atoms(self, point: MultiWaferPoint, n_nodes: int) -> int:
        """Total unique atoms a cluster of subdomains simulates."""
        if n_nodes < 1:
            raise ValueError(f"need at least one node, got {n_nodes}")
        return point.n_interior * n_nodes

    def facility_strong_scaling(
        self,
        element: str,
        n_atoms: int,
        z_sites: int,
        lam: int,
        cutoff_per_lattice: float,
        t_wall_s: float,
        single_wafer_rate: float,
        node_counts: tuple[int, ...] = (1, 4, 16, 64, 256),
    ) -> list[tuple[int, MultiWaferPoint]]:
        """Divide a *fixed* problem across wafers (paper Sec. VI-D outlook).

        The instructive result: because one-atom-per-core step time does
        not depend on the atom count, splitting a fixed problem across
        more wafers leaves the timestep *rate* essentially flat (it is
        already the single-wafer rate, minus the ghost-period latency) —
        wafer clusters buy capacity, not speed.  Breaking the timescale
        barrier further needs faster steps (Table V), not more wafers.
        """
        if n_atoms < 1:
            raise ValueError(f"n_atoms must be positive, got {n_atoms}")
        out = []
        for nodes in node_counts:
            interior = n_atoms // nodes
            x = max(2 * lam + 1, int(round((interior / z_sites) ** 0.5)))
            point = self.evaluate(
                element, x, z_sites, lam, cutoff_per_lattice, t_wall_s,
                single_wafer_rate,
            )
            out.append((nodes, point))
        return out
