"""Energy-efficiency models (paper Fig. 7b, 7c).

Timesteps per joule = timesteps per second / system power.  The WSE
draws a fixed 23 kW; cluster baselines draw power proportional to the
nodes engaged, so past the strong-scaling knee both timesteps/s and
timesteps/J *fall together* — the paper's key energy observation.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EfficiencyPoint", "EnergyModel", "pareto_front"]


@dataclass(frozen=True)
class EfficiencyPoint:
    """One machine configuration's performance/efficiency sample."""

    machine: str
    element: str
    units: float  # nodes / GCDs / sockets engaged
    rate_steps_per_s: float
    power_watts: float

    @property
    def steps_per_joule(self) -> float:
        """Energy efficiency."""
        return self.rate_steps_per_s / self.power_watts

    def relative_to(self, other: "EfficiencyPoint") -> tuple[float, float]:
        """(performance, efficiency) of ``other`` normalized to this point.

        The paper's Fig. 7c normalizes every WSE result to 1 and plots
        CPU/GPU systems relative to it.
        """
        return (
            other.rate_steps_per_s / self.rate_steps_per_s,
            other.steps_per_joule / self.steps_per_joule,
        )


@dataclass(frozen=True)
class EnergyModel:
    """Per-unit power draw of a cluster machine."""

    unit_power_watts: float
    base_power_watts: float = 0.0

    def power(self, units: float) -> float:
        """System power with ``units`` nodes/GCDs engaged."""
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        return self.base_power_watts + self.unit_power_watts * units


def pareto_front(points: list[EfficiencyPoint]) -> list[EfficiencyPoint]:
    """Points not dominated in (rate, steps/joule) — Fig. 7c's frontier."""
    front = []
    for p in points:
        dominated = any(
            (q.rate_steps_per_s >= p.rate_steps_per_s
             and q.steps_per_joule >= p.steps_per_joule
             and (q.rate_steps_per_s > p.rate_steps_per_s
                  or q.steps_per_joule > p.steps_per_joule))
            for q in points
        )
        if not dominated:
            front.append(p)
    return sorted(front, key=lambda p: p.rate_steps_per_s)
