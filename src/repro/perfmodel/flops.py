"""FLOP accounting (paper Table III).

The paper counts adds, multiplies and "other" operations (conversions,
reciprocal-sqrt iterations) for every algorithm step, in the basis
(per candidate, per interaction, fixed per step).  The rows live next to
the cycle pricing in :data:`repro.wse.tile.TABLE3_FLOPS`; this module
renders them as the published table and converts work counts to total
FLOPs for the utilization analysis (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wse.tile import TABLE3_FLOPS, FlopCounts

__all__ = ["FlopRow", "flop_table", "flops_per_atom_step", "at_peak_time_ns"]


@dataclass(frozen=True)
class FlopRow:
    """One line of the Table III accounting."""

    term: str
    group: str  # candidate / interaction / fixed
    counts: FlopCounts
    note: str


#: Full row-by-row accounting matching paper Table III.
TABLE3_ROWS: list[FlopRow] = [
    FlopRow("r_ij <- r_j - r_i", "candidate", FlopCounts(3, 0, 0),
            "Relative displacement"),
    FlopRow("r_ij^2 <- r_ij . r_ij", "candidate", FlopCounts(2, 3, 0),
            "Squared distance"),
    FlopRow("r_ij^2 < r_cut^2", "candidate", FlopCounts(1, 0, 0),
            "Threshold check"),
    FlopRow("r_ij^-1 <- (r_ij^2)^-1/2", "interaction", FlopCounts(3, 8, 1),
            "Newton-Raphson"),
    FlopRow("r_ij <- r_ij^2 * r_ij^-1", "interaction", FlopCounts(0, 1, 0),
            "Euclidean distance"),
    FlopRow("k, dx <- segment(r_ij)", "interaction", FlopCounts(1, 1, 2),
            "Spline segment"),
    FlopRow("sum rho[k](dx)", "interaction", FlopCounts(3, 2, 0),
            "Density evaluation"),
    FlopRow("rho'[k](dx), phi'[k](dx)", "interaction", FlopCounts(2, 2, 0),
            "Linear splines"),
    FlopRow("force terms", "interaction", FlopCounts(5, 5, 0),
            "Force evaluation"),
    FlopRow("k, dx <- segment(rho_i)", "fixed", FlopCounts(1, 1, 2),
            "Spline segment"),
    FlopRow("F'[k](dx)", "fixed", FlopCounts(1, 1, 0),
            "Embedding component"),
    FlopRow("integrate v_i, r_i", "fixed", FlopCounts(6, 0, 0),
            "Verlet integration"),
]


def flop_table() -> dict[str, FlopCounts]:
    """Per-group subtotals; must equal :data:`TABLE3_FLOPS`."""
    groups: dict[str, FlopCounts] = {}
    for g in ("candidate", "interaction", "fixed"):
        rows = [r.counts for r in TABLE3_ROWS if r.group == g]
        groups[g] = FlopCounts(
            adds=sum(c.adds for c in rows),
            muls=sum(c.muls for c in rows),
            other=sum(c.other for c in rows),
        )
    return groups


def flops_per_atom_step(n_candidate: float, n_interaction: float) -> float:
    """Algorithm-specified FLOPs per atom per timestep."""
    return (
        TABLE3_FLOPS["candidate"].total * n_candidate
        + TABLE3_FLOPS["interaction"].total * n_interaction
        + TABLE3_FLOPS["fixed"].total
    )


def at_peak_time_ns(counts: FlopCounts, flops_per_cycle: float,
                    clock_hz: float) -> float:
    """Theoretical at-peak runtime of one group (Table III right column).

    E.g. the candidate subtotal (9 ops) at 2 ops/cycle and the WSE-2
    clock is ~5.3 ns, against 26.6 ns measured -> 20 % utilization.
    """
    cycles = counts.total / flops_per_cycle
    return cycles / clock_hz * 1.0e9
