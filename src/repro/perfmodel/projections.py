"""Future-optimization projections (paper Table V / Sec. VI-A).

Table V re-expresses the baseline model in the basis

    t = multicast * n_candidate + miss * n_miss + interaction * n_int + fixed

(n_miss = rejected candidates = n_candidate - n_interaction), with
baseline costs 6 / 21 / 92 / 574 ns, then stacks four conservative
optimizations:

1. Fixed cost      — 2x on the fixed component (574 -> 287 ns).
2. Neighbor list   — re-examine candidates every 10th step (miss /10).
3. Force symmetry  — i<j computation + reverse-multicast reduction (interaction /2).
4. Multi-core workers — 4-core parallelization, 2x on multicast, miss
   and interaction.

Combined, the tantalum benchmark projects above one million
timesteps/s.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ProjectionBasis", "ProjectionRow", "project_optimizations",
           "PAPER_BASELINE_BASIS"]


@dataclass(frozen=True)
class ProjectionBasis:
    """Component costs in nanoseconds (Table V columns)."""

    multicast: float
    miss: float
    interaction: float
    fixed: float

    def step_time_ns(self, n_candidate: float, n_interaction: float) -> float:
        """Wall time of one step under this basis."""
        n_miss = n_candidate - n_interaction
        if n_miss < 0:
            raise ValueError(
                f"more interactions ({n_interaction}) than candidates "
                f"({n_candidate})"
            )
        return (
            self.multicast * n_candidate
            + self.miss * n_miss
            + self.interaction * n_interaction
            + self.fixed
        )

    def steps_per_second(self, n_candidate: float, n_interaction: float) -> float:
        """Timestep rate under this basis."""
        return 1.0e9 / self.step_time_ns(n_candidate, n_interaction)


#: Paper Table V "Baseline" row.  multicast + miss = A (26.6 ns);
#: interaction - miss = B (71.4 ns); fixed = C (574 ns).
PAPER_BASELINE_BASIS = ProjectionBasis(
    multicast=6.0, miss=20.6, interaction=92.0, fixed=574.0
)


@dataclass(frozen=True)
class ProjectionRow:
    """One cumulative optimization stage and its projected rates."""

    description: str
    basis: ProjectionBasis
    rates: dict[str, float]  # element symbol -> steps/s


def project_optimizations(
    workloads: dict[str, tuple[float, float]],
    *,
    baseline: ProjectionBasis = PAPER_BASELINE_BASIS,
) -> list[ProjectionRow]:
    """Cumulative Table V stages for ``{element: (n_cand, n_int)}``."""
    stages: list[tuple[str, ProjectionBasis]] = []
    b = baseline
    stages.append(("Baseline", b))
    b = replace(b, fixed=b.fixed * 0.5)
    stages.append(("Fixed cost", b))
    b = replace(b, miss=b.miss * 0.1)
    stages.append(("Neighbor list", b))
    b = replace(b, interaction=b.interaction * 0.5)
    stages.append(("Symmetry", b))
    b = replace(
        b,
        multicast=b.multicast * 0.5,
        miss=b.miss * 0.5,
        interaction=b.interaction * 0.5,
    )
    stages.append(("Parallel", b))
    rows = []
    for description, basis in stages:
        rates = {
            sym: basis.steps_per_second(nc, ni)
            for sym, (nc, ni) in workloads.items()
        }
        rows.append(ProjectionRow(description=description, basis=basis, rates=rates))
    return rows
