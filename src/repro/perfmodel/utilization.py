"""Utilization analysis (paper Table IV).

Utilization = algorithm-specified FLOP rate / theoretical platform peak.
The same FLOP model (Table III) is credited to every platform — as the
paper notes, slightly generous to LAMMPS, which skips most candidate
processing by reusing neighbor lists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.flops import flops_per_atom_step

__all__ = ["UtilizationRow", "utilization"]


@dataclass(frozen=True)
class UtilizationRow:
    """One machine/element cell of Table IV."""

    machine: str
    element: str
    rate_steps_per_s: float
    n_atoms: int
    peak_pflops: float
    utilization: float

    @property
    def percent(self) -> float:
        """Utilization in percent."""
        return 100.0 * self.utilization


def utilization(
    machine: str,
    element: str,
    rate_steps_per_s: float,
    n_atoms: int,
    n_candidate: float,
    n_interaction: float,
    peak_flops: float,
) -> UtilizationRow:
    """Fraction of peak achieved by a measured simulation rate."""
    if rate_steps_per_s <= 0 or n_atoms <= 0 or peak_flops <= 0:
        raise ValueError(
            f"rate/atoms/peak must be positive: {rate_steps_per_s}, "
            f"{n_atoms}, {peak_flops}"
        )
    per_step = flops_per_atom_step(n_candidate, n_interaction) * n_atoms
    achieved = per_step * rate_steps_per_s
    return UtilizationRow(
        machine=machine,
        element=element,
        rate_steps_per_s=rate_steps_per_s,
        n_atoms=n_atoms,
        peak_pflops=peak_flops / 1.0e15,
        utilization=achieved / peak_flops,
    )
