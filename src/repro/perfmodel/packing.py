"""Multi-atom-per-core packing model (paper Sec. V-C).

The paper distributes one atom per core and notes that "distributing
multiple atoms per core could further increase the problem size when
all cores of the wafer are engaged" (citing the NETL field-equation
work).  This model prices that mode: with ``k`` atoms per core,

* the physical pitch grows by sqrt(k), so the neighborhood half-width
  in *tiles* shrinks to ``ceil(b / sqrt(k))``;
* each exchange carries ``k`` atom records per tile (vector length
  scales by k);
* per-core compute scales by k (each atom still processes the same
  physical candidates and interactions).

Throughput in atom-steps/s grows sub-linearly in k (compute dominates),
while timesteps/s falls roughly as 1/k — the trade the paper gestures
at for capacity scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.cycle_model import CycleCostModel

__all__ = ["PackedConfig", "packed_step_cycles", "packing_sweep"]


@dataclass(frozen=True)
class PackedConfig:
    """One packing configuration's modeled performance."""

    atoms_per_core: int
    b_tiles: int
    step_cycles: float
    steps_per_second: float
    atom_steps_per_second: float
    max_atoms: int


def packed_step_cycles(
    model: CycleCostModel,
    n_candidate: float,
    n_interaction: float,
    b_one_atom: int,
    atoms_per_core: int,
) -> float:
    """Cycles per timestep with ``atoms_per_core`` atoms on each tile.

    ``n_candidate``/``n_interaction`` are *per atom* (physics-side
    counts, unchanged by packing); ``b_one_atom`` is the neighborhood
    half-width of the one-atom-per-core mapping.
    """
    k = atoms_per_core
    if k < 1:
        raise ValueError(f"atoms_per_core must be >= 1, got {k}")
    b_tiles = max(1, math.ceil(b_one_atom / math.sqrt(k)))
    # exchange with k-record vectors on the shrunken neighborhood
    from repro.wse.multicast import exchange_cycle_model

    exchange = (
        exchange_cycle_model(3 * k, b_tiles) + exchange_cycle_model(k, b_tiles)
    ) * model.opt.multicast_factor
    compute = k * (
        model.candidate_cycles() * n_candidate
        + model.interaction_cycles() * n_interaction
    )
    return float(exchange + compute + model.fixed_cycles())


def packing_sweep(
    model: CycleCostModel,
    n_candidate: float,
    n_interaction: float,
    b_one_atom: int,
    *,
    k_values: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> list[PackedConfig]:
    """Model performance across packing factors."""
    out = []
    for k in k_values:
        cycles = packed_step_cycles(
            model, n_candidate, n_interaction, b_one_atom, k
        )
        rate = 1.0 / model.machine.cycles_to_seconds(cycles)
        b_tiles = max(1, math.ceil(b_one_atom / math.sqrt(k)))
        out.append(PackedConfig(
            atoms_per_core=k,
            b_tiles=b_tiles,
            step_cycles=cycles,
            steps_per_second=rate,
            atom_steps_per_second=rate * k * model.machine.usable_cores,
            max_atoms=k * model.machine.usable_cores,
        ))
    return out
