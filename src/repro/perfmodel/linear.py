"""The paper's linear timestep model and its regression (Table II).

    t_wall = A * n_candidate + B * n_interaction + C

Fit by ordinary least squares over a controlled sweep of
(n_candidate, n_interaction) configurations (paper Sec. IV-B type 2,
Sec. V-B); the paper reports A = 26.6 ns, B = 71.4 ns, C = 574.0 ns
with r^2 = 0.9998 — the residual coming from the mild sqrt(candidate)
dependence of the multicast schedule, which our cycle model reproduces
(:mod:`repro.core.cycle_model`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LinearStepModel", "fit_linear_model", "PAPER_TABLE2"]


@dataclass(frozen=True)
class LinearStepModel:
    """Fitted constants, all in nanoseconds.

    Attributes
    ----------
    a_candidate:
        Cost per received candidate (paper: 26.6 ns).
    b_interaction:
        Cost per accepted interaction (paper: 71.4 ns).
    c_fixed:
        Fixed cost per timestep (paper: 574.0 ns).
    r_squared:
        Coefficient of determination of the fit (1.0 when constructed
        directly rather than fitted).
    """

    a_candidate: float
    b_interaction: float
    c_fixed: float
    r_squared: float = 1.0

    def step_time_ns(self, n_candidate, n_interaction):
        """Predicted wall time of one step (ns)."""
        return (
            self.a_candidate * np.asarray(n_candidate, dtype=np.float64)
            + self.b_interaction * np.asarray(n_interaction, dtype=np.float64)
            + self.c_fixed
        )

    def steps_per_second(self, n_candidate: float, n_interaction: float) -> float:
        """Predicted timestep rate."""
        t = float(self.step_time_ns(n_candidate, n_interaction))
        if t <= 0:
            raise ValueError(f"non-positive predicted step time {t}")
        return 1.0e9 / t

    def relative_error(self, measured_rate: float, n_candidate: float,
                       n_interaction: float) -> float:
        """Prediction error vs a measured rate (paper Table I column)."""
        predicted = self.steps_per_second(n_candidate, n_interaction)
        return abs(predicted - measured_rate) / measured_rate


#: The constants the paper reports in Table II.
PAPER_TABLE2 = LinearStepModel(
    a_candidate=26.6, b_interaction=71.4, c_fixed=574.0, r_squared=0.9998
)


def fit_linear_model(
    n_candidate: np.ndarray,
    n_interaction: np.ndarray,
    t_wall_ns: np.ndarray,
) -> LinearStepModel:
    """Least-squares fit of the three constants from sweep measurements."""
    n_candidate = np.asarray(n_candidate, dtype=np.float64)
    n_interaction = np.asarray(n_interaction, dtype=np.float64)
    t_wall_ns = np.asarray(t_wall_ns, dtype=np.float64)
    if not (len(n_candidate) == len(n_interaction) == len(t_wall_ns)):
        raise ValueError("sweep arrays must have equal length")
    if len(t_wall_ns) < 3:
        raise ValueError(
            f"need at least 3 sweep points to fit 3 constants, got {len(t_wall_ns)}"
        )
    design = np.stack(
        [n_candidate, n_interaction, np.ones_like(n_candidate)], axis=1
    )
    coef, _, rank, _ = np.linalg.lstsq(design, t_wall_ns, rcond=None)
    if rank < 3:
        raise ValueError(
            "sweep is degenerate (candidate and interaction counts are "
            "collinear); vary them independently"
        )
    resid = t_wall_ns - design @ coef
    ss_res = float(np.sum(resid**2))
    ss_tot = float(np.sum((t_wall_ns - t_wall_ns.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearStepModel(
        a_candidate=float(coef[0]),
        b_interaction=float(coef[1]),
        c_fixed=float(coef[2]),
        r_squared=r2,
    )
