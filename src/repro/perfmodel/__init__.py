"""Performance models reproducing the paper's analysis artifacts.

* :mod:`repro.perfmodel.linear` — the Table II regression
  ``t = A n_candidate + B n_interaction + C``.
* :mod:`repro.perfmodel.flops` — Table III FLOP accounting.
* :mod:`repro.perfmodel.utilization` — Table IV fraction-of-peak.
* :mod:`repro.perfmodel.projections` — Table V future optimizations.
* :mod:`repro.perfmodel.multiwafer` — Table VI ghost-region scaling.
* :mod:`repro.perfmodel.energy` — Fig. 7b/c timesteps-per-joule.
* :mod:`repro.perfmodel.timescale` — Fig. 1 achievable-timescale map.
"""

from repro.perfmodel.linear import LinearStepModel, fit_linear_model
from repro.perfmodel.flops import flop_table, flops_per_atom_step
from repro.perfmodel.utilization import utilization, UtilizationRow
from repro.perfmodel.projections import project_optimizations, ProjectionRow
from repro.perfmodel.multiwafer import MultiWaferModel, MultiWaferPoint
from repro.perfmodel.energy import EnergyModel, EfficiencyPoint
from repro.perfmodel.timescale import achievable_timescale_um, TimescalePoint
from repro.perfmodel.packing import packing_sweep, PackedConfig

__all__ = [
    "LinearStepModel",
    "fit_linear_model",
    "flop_table",
    "flops_per_atom_step",
    "utilization",
    "UtilizationRow",
    "project_optimizations",
    "ProjectionRow",
    "MultiWaferModel",
    "MultiWaferPoint",
    "EnergyModel",
    "EfficiencyPoint",
    "achievable_timescale_um",
    "TimescalePoint",
    "packing_sweep",
    "PackedConfig",
]
