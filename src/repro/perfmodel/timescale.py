"""Achievable-timescale map (paper Fig. 1).

Fig. 1 places stars for the maximum simulated time reachable in 30
wall-clock days at each platform's measured timestep rate, against the
method boxes (QM / MD / CM).  The conversion is elementary — rate x
wall time x timestep — but it is the paper's headline figure, so it
gets an explicit, tested home.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TimescalePoint", "achievable_timescale_um", "METHOD_BOXES"]

SECONDS_PER_DAY = 86400.0

#: Illustrative (length, time) ranges of the three simulation regimes in
#: Fig. 1: (min_length_m, max_length_m, min_time_s, max_time_s).
METHOD_BOXES = {
    "QM": (1e-10, 1e-8, 1e-15, 1e-11),
    "MD": (1e-9, 1e-6, 1e-13, 1e-5),
    "CM": (1e-7, 1e-2, 1e-9, 1e2),
}


def achievable_timescale_um(
    rate_steps_per_s: float,
    dt_fs: float = 2.0,
    wall_days: float = 30.0,
) -> float:
    """Simulated microseconds reachable in ``wall_days`` of wall time."""
    if rate_steps_per_s <= 0 or dt_fs <= 0 or wall_days <= 0:
        raise ValueError("rate, timestep and wall time must be positive")
    steps = rate_steps_per_s * wall_days * SECONDS_PER_DAY
    return steps * dt_fs * 1.0e-9  # fs -> us


@dataclass(frozen=True)
class TimescalePoint:
    """One Fig. 1 star."""

    machine: str
    rate_steps_per_s: float
    dt_fs: float = 2.0
    wall_days: float = 30.0

    @property
    def simulated_us(self) -> float:
        """Reachable simulated time (microseconds)."""
        return achievable_timescale_um(
            self.rate_steps_per_s, self.dt_fs, self.wall_days
        )

    def speedup_over(self, other: "TimescalePoint") -> float:
        """Ratio of reachable timescales (the paper's '179x')."""
        return self.simulated_us / other.simulated_us
