"""Pluggable compute backends for the hot-path kernels.

The physics modules (:mod:`repro.potentials`, :mod:`repro.md`) describe
*what* is computed; the kernels layer owns *how* the inner loops run.
Each backend is a module exposing the same kernel interface
(:data:`KERNEL_FUNCTIONS`), so a compiled implementation can slot in
without touching any physics code:

``numpy``
    The baseline: fused vectorized NumPy kernels.  Always available.
``numba``
    JIT-compiled loops via :mod:`numba`.  Optional — when the import
    fails the registry falls back to ``numpy`` and records why.
``parallel``
    The numpy kernels plus the domain-sharded worker-pool force
    pipeline (:mod:`repro.parallel`).  Optional — requires the fork
    start method; unavailable platforms fall back to ``numpy``.

The interface has two tiers.  :data:`CORE_KERNEL_FUNCTIONS` are the
original scatter/spline primitives every backend must provide — a
backend missing one is malformed and rejected outright.
:data:`FUSED_KERNEL_FUNCTIONS` are the whole-pass kernels (neighbor
prefilter, fused EAM density/force passes, grouped-spline batch
evaluation, force+integrate).  A backend may provide any subset of the
fused tier: missing functions are filled per-function from the numpy
baseline, with **one** warning naming exactly which functions degraded
— so an older out-of-tree backend keeps working when the interface
widens, at reduced speed for the passes it lacks.

Selection order: an explicit :func:`set_backend` call, else the
``REPRO_KERNEL_BACKEND`` environment variable, else ``numpy``.  Unknown
or unavailable backends degrade to ``numpy`` with a warning rather than
failing: a missing JIT must never change whether a simulation runs,
only how fast.

JIT backends additionally expose a ``warmup()`` hook;
:func:`warmup_backend` runs it once per process and caches the elapsed
compile time, so benches can pre-pay (and report) JIT latency instead
of polluting the first timed step.
"""

from __future__ import annotations

import os
import time
import warnings
from types import ModuleType, SimpleNamespace

__all__ = [
    "KERNEL_FUNCTIONS",
    "CORE_KERNEL_FUNCTIONS",
    "FUSED_KERNEL_FUNCTIONS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "available_backends",
    "register_backend",
    "set_backend",
    "active_backend",
    "active_backend_name",
    "backend_status",
    "warmup_backend",
    "reset_warnings",
]

#: The primitives every backend module must provide (the original
#: three-function interface); a backend missing one is rejected.
CORE_KERNEL_FUNCTIONS = (
    "spline_eval",       # (coeffs, k, dx) -> (value, derivative)
    "accumulate_scalar",  # (idx, weights, n) -> (n,) scatter-add
    "accumulate_vec3",   # (idx, vectors, n) -> (n, 3) scatter-add
)

#: Whole-pass fused kernels.  Backends may provide any subset; missing
#: functions degrade per-function to the numpy baseline with a single
#: warning naming them.
FUSED_KERNEL_FUNCTIONS = (
    "grouped_spline_eval",  # (bank, x, member) -> (value, derivative)
    "neighbor_prefilter",   # candidate distance filter -> (i, j, rij, r)
    "fused_density_pass",   # half-pair EAM stage 1 -> (rho_bar, d_ji, d_ij)
    "fused_force_pass",     # half-pair EAM stage 2 -> (e_pair, forces)
    "force_integrate",      # leap-frog kick+drift folded onto the forces
)

#: The full interface, in declaration order.
KERNEL_FUNCTIONS = CORE_KERNEL_FUNCTIONS + FUSED_KERNEL_FUNCTIONS

DEFAULT_BACKEND = "numpy"
ENV_VAR = "REPRO_KERNEL_BACKEND"

_loaders: dict[str, object] = {}
_active: ModuleType | SimpleNamespace | None = None
_active_name: str | None = None
_failures: dict[str, str] = {}
#: Resolved backend objects by name (raw module when complete, a
#: namespace with numpy fills when the fused tier is partial).
_resolved: dict[str, ModuleType | SimpleNamespace] = {}
#: Cached ``warmup()`` elapsed seconds per backend name.
_warmups: dict[str, float] = {}
#: Backend names whose fallback warning has already been emitted; a
#: long campaign calling ``set_backend`` per run warns once per name,
#: not once per call.  Long-lived processes (the serve scheduler) call
#: :func:`reset_warnings` between jobs so one job's degradation does
#: not silence the next job's — and so forked workers, which inherit
#: this set from the parent, do not inherit its suppressions.
_warned_fallbacks: set[str] = set()


def reset_warnings() -> None:
    """Re-arm the once-per-name fallback warnings.

    The warn-once cache is module state: without a reset it suppresses
    warnings for the life of the process *and* across fork, so a
    worker or a served job never hears about degradations that predate
    it.  The serve scheduler calls this before each job.
    """
    _warned_fallbacks.clear()


def register_backend(name: str, loader) -> None:
    """Register ``loader`` (a zero-arg callable returning a module-like
    object with the :data:`KERNEL_FUNCTIONS` attributes) under ``name``."""
    _loaders[name] = loader
    _resolved.pop(name, None)
    _failures.pop(name, None)
    _warmups.pop(name, None)


def _resolve(name: str, backend) -> ModuleType | SimpleNamespace:
    """Capability negotiation: fill missing fused kernels from numpy.

    A complete backend is used as-is (``active_backend() is module``
    stays true for numpy).  A backend providing the core tier but only
    part of the fused tier is wrapped in a namespace whose gaps point
    at the numpy implementations; the degradation is reported once,
    naming the functions.
    """
    missing_core = [f for f in CORE_KERNEL_FUNCTIONS if not hasattr(backend, f)]
    if missing_core:
        raise TypeError(f"backend {name!r} is missing kernels: {missing_core}")
    missing = [f for f in FUSED_KERNEL_FUNCTIONS if not hasattr(backend, f)]
    if not missing:
        return backend
    from repro.kernels import numpy_backend

    attrs = {f: getattr(backend, f) for f in KERNEL_FUNCTIONS
             if hasattr(backend, f)}
    for f in missing:
        attrs[f] = getattr(numpy_backend, f)
    attrs["name"] = getattr(backend, "name", name)
    attrs["missing_kernels"] = tuple(missing)
    for extra in ("provides_pipeline", "warmup"):
        if hasattr(backend, extra):
            attrs[extra] = getattr(backend, extra)
    key = f"{name}:partial"
    if key not in _warned_fallbacks:
        _warned_fallbacks.add(key)
        warnings.warn(
            f"kernel backend {name!r} does not provide "
            f"{sorted(missing)}; those kernels fall back to "
            f"{DEFAULT_BACKEND!r} (per-function degradation)",
            RuntimeWarning,
            stacklevel=3,
        )
    return SimpleNamespace(**attrs)


def _load(name: str) -> ModuleType | SimpleNamespace | None:
    loader = _loaders.get(name)
    if loader is None:
        return None
    cached = _resolved.get(name)
    if cached is not None:
        return cached
    try:
        backend = loader()
    except ImportError as exc:  # optional dependency missing
        _failures[name] = str(exc)
        return None
    resolved = _resolve(name, backend)
    _resolved[name] = resolved
    return resolved


def available_backends() -> list[str]:
    """Names of the backends that import successfully right now."""
    return [name for name in _loaders if _load(name) is not None]


def backend_status() -> dict[str, str]:
    """Per-backend availability: ``"ok"`` or the import failure reason."""
    out = {}
    for name in _loaders:
        out[name] = "ok" if _load(name) is not None else _failures.get(
            name, "unavailable"
        )
    return out


def set_backend(name: str) -> str:
    """Select the active backend; returns the name actually activated.

    Unknown or unavailable names fall back to :data:`DEFAULT_BACKEND`
    with a warning — performance degrades gracefully, physics never
    depends on the choice.
    """
    global _active, _active_name
    backend = _load(name)
    if backend is None:
        reason = _failures.get(name, "not registered")
        if name != DEFAULT_BACKEND and name not in _warned_fallbacks:
            _warned_fallbacks.add(name)
            warnings.warn(
                f"kernel backend {name!r} unavailable ({reason}); "
                f"falling back to {DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        backend = _load(DEFAULT_BACKEND)
        name = DEFAULT_BACKEND
        if backend is None:  # pragma: no cover - numpy always present
            raise RuntimeError("default numpy backend failed to load")
    _active = backend
    _active_name = name
    from repro.obs import metrics

    metrics().counter(f"kernels.set_backend.{name}").inc()
    return name


def active_backend() -> ModuleType | SimpleNamespace:
    """The active backend (resolving env/default on first use)."""
    global _active
    if _active is None:
        set_backend(os.environ.get(ENV_VAR, DEFAULT_BACKEND))
    return _active


def active_backend_name() -> str:
    """Name of the active backend (resolving on first use)."""
    active_backend()
    return _active_name  # type: ignore[return-value]


def warmup_backend(name: str | None = None) -> float:
    """Run the backend's one-time ``warmup()`` hook; return its seconds.

    JIT backends compile their kernels here (against
    ``NUMBA_CACHE_DIR`` when set), so the first timed simulation step
    is steady-state.  The elapsed wall time is cached per backend name
    and process — repeated calls return the recorded cost without
    re-running the hook.  Backends without a hook (numpy) cost 0.0.
    """
    if name is None:
        name = active_backend_name()
    cached = _warmups.get(name)
    if cached is not None:
        return cached
    backend = _load(name)
    elapsed = 0.0
    hook = getattr(backend, "warmup", None) if backend is not None else None
    if callable(hook):
        t0 = time.perf_counter()
        hook()
        elapsed = time.perf_counter() - t0
    _warmups[name] = elapsed
    return elapsed


def _numpy_loader():
    from repro.kernels import numpy_backend

    return numpy_backend


def _numba_loader():
    from repro.kernels import numba_backend  # raises ImportError w/o numba

    return numba_backend


def _parallel_loader():
    # raises ImportError when fork is unavailable on the platform
    from repro.kernels import parallel_backend

    return parallel_backend


register_backend("numpy", _numpy_loader)
register_backend("numba", _numba_loader)
register_backend("parallel", _parallel_loader)
