"""Pluggable compute backends for the hot-path kernels.

The physics modules (:mod:`repro.potentials`, :mod:`repro.md`) describe
*what* is computed; the kernels layer owns *how* the inner loops run.
Each backend is a module exposing the same small kernel interface
(:data:`KERNEL_FUNCTIONS`), so a compiled implementation can slot in
without touching any physics code:

``numpy``
    The baseline: fused vectorized NumPy kernels.  Always available.
``numba``
    JIT-compiled loops via :mod:`numba`.  Optional — when the import
    fails the registry falls back to ``numpy`` and records why.
``parallel``
    The numpy kernels plus the domain-sharded worker-pool force
    pipeline (:mod:`repro.parallel`).  Optional — requires the fork
    start method; unavailable platforms fall back to ``numpy``.

Selection order: an explicit :func:`set_backend` call, else the
``REPRO_KERNEL_BACKEND`` environment variable, else ``numpy``.  Unknown
or unavailable backends degrade to ``numpy`` with a warning rather than
failing: a missing JIT must never change whether a simulation runs,
only how fast.
"""

from __future__ import annotations

import os
import warnings
from types import ModuleType

__all__ = [
    "KERNEL_FUNCTIONS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "available_backends",
    "register_backend",
    "set_backend",
    "active_backend",
    "active_backend_name",
    "backend_status",
]

#: The functions every backend module must provide.
KERNEL_FUNCTIONS = (
    "spline_eval",       # (coeffs, k, dx) -> (value, derivative)
    "accumulate_scalar",  # (idx, weights, n) -> (n,) scatter-add
    "accumulate_vec3",   # (idx, vectors, n) -> (n, 3) scatter-add
)

DEFAULT_BACKEND = "numpy"
ENV_VAR = "REPRO_KERNEL_BACKEND"

_loaders: dict[str, object] = {}
_active: ModuleType | None = None
_active_name: str | None = None
_failures: dict[str, str] = {}
#: Backend names whose fallback warning has already been emitted; a
#: long campaign calling ``set_backend`` per run warns once per name,
#: not once per call.
_warned_fallbacks: set[str] = set()


def register_backend(name: str, loader) -> None:
    """Register ``loader`` (a zero-arg callable returning a module-like
    object with the :data:`KERNEL_FUNCTIONS` attributes) under ``name``."""
    _loaders[name] = loader


def _load(name: str) -> ModuleType | None:
    loader = _loaders.get(name)
    if loader is None:
        return None
    try:
        backend = loader()
    except ImportError as exc:  # optional dependency missing
        _failures[name] = str(exc)
        return None
    missing = [f for f in KERNEL_FUNCTIONS if not hasattr(backend, f)]
    if missing:
        raise TypeError(f"backend {name!r} is missing kernels: {missing}")
    return backend


def available_backends() -> list[str]:
    """Names of the backends that import successfully right now."""
    return [name for name in _loaders if _load(name) is not None]


def backend_status() -> dict[str, str]:
    """Per-backend availability: ``"ok"`` or the import failure reason."""
    out = {}
    for name in _loaders:
        out[name] = "ok" if _load(name) is not None else _failures.get(
            name, "unavailable"
        )
    return out


def set_backend(name: str) -> str:
    """Select the active backend; returns the name actually activated.

    Unknown or unavailable names fall back to :data:`DEFAULT_BACKEND`
    with a warning — performance degrades gracefully, physics never
    depends on the choice.
    """
    global _active, _active_name
    backend = _load(name)
    if backend is None:
        reason = _failures.get(name, "not registered")
        if name != DEFAULT_BACKEND and name not in _warned_fallbacks:
            _warned_fallbacks.add(name)
            warnings.warn(
                f"kernel backend {name!r} unavailable ({reason}); "
                f"falling back to {DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=2,
            )
        backend = _load(DEFAULT_BACKEND)
        name = DEFAULT_BACKEND
        if backend is None:  # pragma: no cover - numpy always present
            raise RuntimeError("default numpy backend failed to load")
    _active = backend
    _active_name = name
    from repro.obs import metrics

    metrics().counter(f"kernels.set_backend.{name}").inc()
    return name


def active_backend() -> ModuleType:
    """The active backend module (resolving env/default on first use)."""
    global _active
    if _active is None:
        set_backend(os.environ.get(ENV_VAR, DEFAULT_BACKEND))
    return _active


def active_backend_name() -> str:
    """Name of the active backend (resolving on first use)."""
    active_backend()
    return _active_name  # type: ignore[return-value]


def _numpy_loader():
    from repro.kernels import numpy_backend

    return numpy_backend


def _numba_loader():
    from repro.kernels import numba_backend  # raises ImportError w/o numba

    return numba_backend


def _parallel_loader():
    # raises ImportError when fork is unavailable on the platform
    from repro.kernels import parallel_backend

    return parallel_backend


register_backend("numpy", _numpy_loader)
register_backend("numba", _numba_loader)
register_backend("parallel", _parallel_loader)
