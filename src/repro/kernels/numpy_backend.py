"""Baseline NumPy kernels (always available).

The fused spline evaluation is the hot loop of the whole EAM stack: one
gather of the packed ``(nseg, 4)`` coefficient rows, then a Horner
polynomial for value and derivative together.  The packed layout
replaces the seed's four scattered per-coefficient gathers and the
separate value/derivative passes.

The whole-pass kernels (``neighbor_prefilter``, ``fused_density_pass``,
``fused_force_pass``, ``grouped_spline_eval``, ``force_integrate``) are
the numpy ports of the loops that used to live inline in
:mod:`repro.md.neighbor_list`, :mod:`repro.potentials.eam` and
:mod:`repro.md.integrators`.  They are deliberately written with the
*identical* numpy operations and orderings those call sites used, so
routing the physics modules through the kernel layer is a pure
refactor: bitwise-identical outputs, and the per-function fallback for
partial backends never changes a trajectory.

Spline *banks* are the packed-group tuples built by
:meth:`repro.potentials.spline.SplineGroup.bank`::

    (coeffs, row0, x0, h, nseg, x_max, y_last, clamp_low, zero_above)

with per-member arrays indexed by the point's member id.  ``clamp_low``
covers the ``extrapolate_low="clamp"`` boundary (``"error"`` is checked
by the caller before the kernel; ``"linear"`` needs no special-casing —
the boundary polynomial continues naturally).
"""

from __future__ import annotations

import numpy as np

name = "numpy"


def spline_eval(
    coeffs: np.ndarray, k: np.ndarray, dx: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Cubic value and derivative from packed per-segment coefficients.

    ``coeffs`` is the C-contiguous ``(nseg, 4)`` array of
    ``(c0, c1, c2, c3)`` rows; ``k`` the segment index per point and
    ``dx`` the local offset from the segment's left knot.
    """
    rows = coeffs[k]  # single fused gather of all four coefficients
    c1 = rows[:, 1]
    c2 = rows[:, 2]
    c3 = rows[:, 3]
    val = rows[:, 0] + dx * (c1 + dx * (c2 + dx * c3))
    der = c1 + dx * (2.0 * c2 + dx * 3.0 * c3)
    return val, der


def accumulate_scalar(idx: np.ndarray, weights: np.ndarray, n: int) -> np.ndarray:
    """Scatter-add scalar weights: ``out[idx[p]] += weights[p]``."""
    return np.bincount(idx, weights=weights, minlength=n)


def accumulate_vec3(idx: np.ndarray, vectors: np.ndarray, n: int) -> np.ndarray:
    """Scatter-add (P, 3) vectors into an (n, 3) accumulator."""
    out = np.empty((n, 3), dtype=np.float64)
    for axis in range(3):
        out[:, axis] = np.bincount(idx, weights=vectors[:, axis], minlength=n)
    return out


# -- whole-pass fused kernels ---------------------------------------------


def grouped_spline_eval(
    bank: tuple, x: np.ndarray, member: np.ndarray | int
) -> tuple[np.ndarray, np.ndarray]:
    """Batched multi-member spline evaluation through a packed bank.

    Point ``p`` is evaluated through member spline ``member[p]``
    (``member`` broadcasts; a scalar evaluates the whole batch through
    one member).  Per point the arithmetic is exactly
    :meth:`repro.potentials.spline.UniformCubicSpline.evaluate`, so the
    batch is bitwise identical to looping the member splines.
    """
    coeffs, row0, x0, h, nseg, x_max, y_last, clamp_low, zero_above = bank
    g = np.asarray(member, dtype=np.int64)
    x0g = x0[g]
    hg = h[g]
    t = (x - x0g) / hg
    k = np.clip(np.floor(t).astype(np.int64), 0, nseg[g] - 1)
    dx = x - (x0g + k * hg)
    if clamp_low:
        dx = np.where(x < x0g, 0.0, dx)
    val, der = spline_eval(coeffs, row0[g] + k, dx)
    xmg = x_max[g]
    if zero_above:
        above = x >= xmg
        val = np.where(above, 0.0, val)
        der = np.where(above, 0.0, der)
    else:
        above = x > xmg
        if np.any(above):
            val = np.where(above, y_last[g], val)
            der = np.where(above, 0.0, der)
    return val, der


def neighbor_prefilter(
    positions: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
    lengths: np.ndarray,
    periodic: np.ndarray,
    rmax: float,
    *,
    inclusive: bool,
    compute_r: bool,
    assume_inside: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Distance-filter candidate pairs at ``rmax``.

    Computes minimum-image separations along the periodic dimensions
    (deterministic half-box tie-break, exactly
    :meth:`repro.md.boundary.Box.minimum_image`), keeps pairs with
    ``r2 <= rmax**2`` (``inclusive``, the Verlet prefilter at build
    time) or ``r2 < rmax**2`` (the strict cutoff query), and returns
    the compacted ``(i, j, rij, r)``.  With ``compute_r=False`` the
    kept geometry is not materialized (rebuilds only need indices) and
    the last two outputs are empty.

    ``assume_inside=True`` asserts the caller has *proved* every
    candidate passes the predicate (e.g. a build-time separation bound
    plus a displacement bound — the shard tier's all-inside guarantee):
    the mask would be all-True, so the comparison and the four
    compaction copies are skipped.  Values are bitwise-identical to the
    masked path — compacting by an all-True mask copies elementwise and
    ``sqrt`` is elementwise — the flag only removes work, never changes
    bits.  The caller's proof is load-bearing: a candidate that would
    have failed the predicate is emitted anyway.
    """
    rij = positions[j] - positions[i]
    for d in range(3):
        if periodic[d]:
            ld = lengths[d]
            rij[:, d] -= ld * np.floor(rij[:, d] / ld + 0.5)
    r2 = np.einsum("ij,ij->i", rij, rij)
    if assume_inside:
        if not compute_r:
            return (
                i,
                j,
                np.empty((0, 3), dtype=np.float64),
                np.empty(0, dtype=np.float64),
            )
        return i, j, rij, np.sqrt(r2)
    if inclusive:
        keep = r2 <= rmax * rmax
    else:
        keep = r2 < rmax * rmax
    if not compute_r:
        return (
            i[keep],
            j[keep],
            np.empty((0, 3), dtype=np.float64),
            np.empty(0, dtype=np.float64),
        )
    return i[keep], j[keep], rij[keep], np.sqrt(r2[keep])


def fused_density_pass(
    i: np.ndarray,
    j: np.ndarray,
    r: np.ndarray,
    ti: np.ndarray,
    tj: np.ndarray,
    rho_bank: tuple,
    n_atoms: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """EAM stage 1 over a half pair list: densities in one pass.

    Evaluates ``rho_{type(j)}(r)`` (j's density at i) and
    ``rho_{type(i)}(r)`` (i's density at j) through the rho bank and
    scatter-adds both directions.  Single-type tables evaluate **once**
    per pair and share the value between directions — the common
    elemental-metal case does one spline pass, not two.  Returns
    ``(rho_bar, d_ji, d_ij)`` where the ``d`` arrays are the per-pair
    density derivatives :func:`fused_force_pass` needs.
    """
    n_members = len(rho_bank[2])
    if n_members == 1:
        v, d = grouped_spline_eval(rho_bank, r, 0)
        rho_bar = accumulate_scalar(i, v, n_atoms)
        rho_bar += accumulate_scalar(j, v, n_atoms)
        return rho_bar, d, d
    v_ji, d_ji = grouped_spline_eval(rho_bank, r, tj)
    v_ij, d_ij = grouped_spline_eval(rho_bank, r, ti)
    rho_bar = accumulate_scalar(i, v_ji, n_atoms)
    rho_bar += accumulate_scalar(j, v_ij, n_atoms)
    return rho_bar, d_ji, d_ij


def fused_force_pass(
    i: np.ndarray,
    j: np.ndarray,
    rij: np.ndarray,
    r: np.ndarray,
    f_der: np.ndarray,
    d_ji: np.ndarray,
    d_ij: np.ndarray,
    phi_bank: tuple,
    phi_member: np.ndarray | int,
    n_atoms: int,
) -> tuple[np.ndarray, np.ndarray]:
    """EAM stage 2 over a half pair list: pair energies and forces.

    ``f_der`` is the globally reduced embedding derivative per atom;
    ``d_ji``/``d_ij`` come from :func:`fused_density_pass` over the
    same pairs; ``phi_member`` maps each pair to its ``phi`` bank slot.
    The Eq. 4 radial scalar feeds both scatter halves, and a pair
    energy of ``phi/2`` is credited to each member atom.

    Degenerate geometry (two atoms at one point) raises
    :class:`FloatingPointError` out of the unit-vector division rather
    than silently propagating NaNs.
    """
    phi_v, phi_d = grouped_spline_eval(phi_bank, r, phi_member)
    s = f_der[i] * d_ji + f_der[j] * d_ij + phi_d
    with np.errstate(invalid="raise", divide="raise"):
        unit = rij / r[:, None]
    fvec = s[:, None] * unit
    forces = accumulate_vec3(i, fvec, n_atoms)
    forces -= accumulate_vec3(j, fvec, n_atoms)
    w = 0.5 * phi_v
    e_pair = accumulate_scalar(i, w, n_atoms)
    e_pair += accumulate_scalar(j, w, n_atoms)
    return e_pair, forces


def force_integrate(
    positions: np.ndarray,
    velocities: np.ndarray,
    forces: np.ndarray,
    masses: np.ndarray,
    dt: float,
    mvv2e: float,
) -> None:
    """Leap-frog kick + drift folded onto the force output, in place.

    Exactly :class:`repro.md.integrators.LeapfrogVerlet`'s update —
    ``v += F/(m*mvv2e) dt;  x += v dt`` with ``dt`` in ps — so the
    fused path is bitwise identical to the unfused one under this
    backend.
    """
    a = forces / (masses[:, None] * mvv2e)
    velocities += a * dt
    positions += velocities * dt
