"""Baseline NumPy kernels (always available).

The fused spline evaluation is the hot loop of the whole EAM stack: one
gather of the packed ``(nseg, 4)`` coefficient rows, then a Horner
polynomial for value and derivative together.  The packed layout
replaces the seed's four scattered per-coefficient gathers and the
separate value/derivative passes.
"""

from __future__ import annotations

import numpy as np

name = "numpy"


def spline_eval(
    coeffs: np.ndarray, k: np.ndarray, dx: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Cubic value and derivative from packed per-segment coefficients.

    ``coeffs`` is the C-contiguous ``(nseg, 4)`` array of
    ``(c0, c1, c2, c3)`` rows; ``k`` the segment index per point and
    ``dx`` the local offset from the segment's left knot.
    """
    rows = coeffs[k]  # single fused gather of all four coefficients
    c1 = rows[:, 1]
    c2 = rows[:, 2]
    c3 = rows[:, 3]
    val = rows[:, 0] + dx * (c1 + dx * (c2 + dx * c3))
    der = c1 + dx * (2.0 * c2 + dx * 3.0 * c3)
    return val, der


def accumulate_scalar(idx: np.ndarray, weights: np.ndarray, n: int) -> np.ndarray:
    """Scatter-add scalar weights: ``out[idx[p]] += weights[p]``."""
    return np.bincount(idx, weights=weights, minlength=n)


def accumulate_vec3(idx: np.ndarray, vectors: np.ndarray, n: int) -> np.ndarray:
    """Scatter-add (P, 3) vectors into an (n, 3) accumulator."""
    out = np.empty((n, 3), dtype=np.float64)
    for axis in range(3):
        out[:, axis] = np.bincount(idx, weights=vectors[:, axis], minlength=n)
    return out
