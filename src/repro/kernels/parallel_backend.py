"""The ``parallel`` kernel-backend tier.

Selecting ``backend="parallel"`` means two things:

* the in-process kernels are the serial numpy ones (re-exported below —
  the registry contract is unchanged), and
* the reference engine's :class:`~repro.md.simulation.Simulation`
  additionally routes force evaluation through the domain-sharded
  :class:`~repro.parallel.pipeline.ShardedForcePipeline`
  (``provides_pipeline``), with the layout taken from
  ``RunSpec.workers``/``topology``/``transport``.  Workers own their
  tiles across steps (sparse halo packs, cross-step candidate reuse);
  their inner loops still run a serial backend from this registry —
  numpy by default, or the JIT tier via
  ``REPRO_PARALLEL_INNER_BACKEND``.

Importing this module raises :class:`ImportError` when the platform
cannot host the worker pool (no fork start method), so the registry's
standard once-per-name fallback degrades ``parallel`` to ``numpy``
exactly like a missing JIT.
"""

from __future__ import annotations

from repro.kernels.numpy_backend import (  # noqa: F401  (registry contract)
    accumulate_scalar,
    accumulate_vec3,
    force_integrate,
    fused_density_pass,
    fused_force_pass,
    grouped_spline_eval,
    neighbor_prefilter,
    spline_eval,
)
from repro.parallel.pool import fork_available

if not fork_available():  # pragma: no cover - platform-dependent
    raise ImportError(
        "parallel backend requires the fork start method "
        "(unavailable on this platform)"
    )

#: Simulation checks this flag to enable the sharded force pipeline.
provides_pipeline = True
