"""Optional numba-JIT kernels.

Importing this module raises :class:`ImportError` when :mod:`numba` is
not installed; the registry catches that and falls back to the numpy
backend.  The kernels are numerically identical to the numpy ones —
same Horner ordering, same accumulation order — so switching backends
never changes physics, only speed.
"""

from __future__ import annotations

import numpy as np

import numba  # noqa: F401  (ImportError here triggers the registry fallback)
from numba import njit

name = "numba"


@njit(cache=True)
def _spline_eval(coeffs, k, dx):
    p = k.shape[0]
    val = np.empty(p, dtype=np.float64)
    der = np.empty(p, dtype=np.float64)
    for idx in range(p):
        row = coeffs[k[idx]]
        c1 = row[1]
        c2 = row[2]
        c3 = row[3]
        d = dx[idx]
        val[idx] = row[0] + d * (c1 + d * (c2 + d * c3))
        der[idx] = c1 + d * (2.0 * c2 + d * 3.0 * c3)
    return val, der


def spline_eval(coeffs, k, dx):
    """Cubic value and derivative from packed per-segment coefficients."""
    return _spline_eval(
        np.ascontiguousarray(coeffs),
        np.ascontiguousarray(k),
        np.ascontiguousarray(dx),
    )


@njit(cache=True)
def _accumulate_scalar(idx, weights, n):
    out = np.zeros(n, dtype=np.float64)
    for p in range(idx.shape[0]):
        out[idx[p]] += weights[p]
    return out


def accumulate_scalar(idx, weights, n):
    """Scatter-add scalar weights: ``out[idx[p]] += weights[p]``."""
    return _accumulate_scalar(
        np.ascontiguousarray(idx), np.ascontiguousarray(weights), n
    )


@njit(cache=True)
def _accumulate_vec3(idx, vectors, n):
    out = np.zeros((n, 3), dtype=np.float64)
    for p in range(idx.shape[0]):
        tgt = idx[p]
        out[tgt, 0] += vectors[p, 0]
        out[tgt, 1] += vectors[p, 1]
        out[tgt, 2] += vectors[p, 2]
    return out


def accumulate_vec3(idx, vectors, n):
    """Scatter-add (P, 3) vectors into an (n, 3) accumulator."""
    return _accumulate_vec3(
        np.ascontiguousarray(idx), np.ascontiguousarray(vectors), n
    )
