"""Optional numba-JIT kernels.

Importing this module raises :class:`ImportError` when :mod:`numba` is
not installed; the registry catches that and falls back to the numpy
backend.  The kernels are numerically identical to the numpy ones —
same Horner ordering, same accumulation order, no ``fastmath`` (so no
FMA contraction or reassociation) — and in practice agree bitwise on
the core primitives.  The equivalence suite gates every function at
1e-9 relative against numpy; bitwise identity is asserted only where
the scalar operation sequence provably matches (the scatter-add
accumulators and the integrator fold).

The whole-pass kernels are what make this tier fast: one compiled loop
over the pair list with the packed-spline Horner evaluation inlined —
no boolean masks, no ``(P,)`` temporaries, no per-stage Python — the
software shape of the fully pipelined force datapaths in the FPGA MD
engines the roadmap references.

Call :func:`warmup` (via :func:`repro.kernels.warmup_backend`) to
compile everything up front; with ``NUMBA_CACHE_DIR`` set the compiled
artifacts persist across processes and the warm-up collapses to a
cache load.
"""

from __future__ import annotations

import numpy as np

import numba  # noqa: F401  (ImportError here triggers the registry fallback)
from numba import njit

name = "numba"


@njit(cache=True)
def _spline_eval(coeffs, k, dx):
    p = k.shape[0]
    val = np.empty(p, dtype=np.float64)
    der = np.empty(p, dtype=np.float64)
    for idx in range(p):
        row = coeffs[k[idx]]
        c1 = row[1]
        c2 = row[2]
        c3 = row[3]
        d = dx[idx]
        val[idx] = row[0] + d * (c1 + d * (c2 + d * c3))
        der[idx] = c1 + d * (2.0 * c2 + d * 3.0 * c3)
    return val, der


def spline_eval(coeffs, k, dx):
    """Cubic value and derivative from packed per-segment coefficients."""
    return _spline_eval(
        np.ascontiguousarray(coeffs),
        np.ascontiguousarray(k),
        np.ascontiguousarray(dx),
    )


@njit(cache=True)
def _accumulate_scalar(idx, weights, n):
    out = np.zeros(n, dtype=np.float64)
    for p in range(idx.shape[0]):
        out[idx[p]] += weights[p]
    return out


def accumulate_scalar(idx, weights, n):
    """Scatter-add scalar weights: ``out[idx[p]] += weights[p]``."""
    return _accumulate_scalar(
        np.ascontiguousarray(idx), np.ascontiguousarray(weights), n
    )


@njit(cache=True)
def _accumulate_vec3(idx, vectors, n):
    out = np.zeros((n, 3), dtype=np.float64)
    for p in range(idx.shape[0]):
        tgt = idx[p]
        out[tgt, 0] += vectors[p, 0]
        out[tgt, 1] += vectors[p, 1]
        out[tgt, 2] += vectors[p, 2]
    return out


def accumulate_vec3(idx, vectors, n):
    """Scatter-add (P, 3) vectors into an (n, 3) accumulator."""
    return _accumulate_vec3(
        np.ascontiguousarray(idx), np.ascontiguousarray(vectors), n
    )


# -- whole-pass fused kernels ---------------------------------------------


@njit(cache=True)
def _eval_point(coeffs, row0, x0, h, nseg, x_max, y_last,
                clamp_low, zero_above, xv, m):
    """One point through member spline ``m`` of a packed bank.

    The scalar twin of the numpy grouped evaluation: segment lookup,
    clamp/zero boundary handling, Horner value + derivative.
    """
    if zero_above and xv >= x_max[m]:
        return 0.0, 0.0
    if (not zero_above) and xv > x_max[m]:
        return y_last[m], 0.0
    x0m = x0[m]
    hm = h[m]
    k = int(np.floor((xv - x0m) / hm))
    if k < 0:
        k = 0
    last = nseg[m] - 1
    if k > last:
        k = last
    d = xv - (x0m + k * hm)
    if clamp_low and xv < x0m:
        d = 0.0
    row = coeffs[row0[m] + k]
    c1 = row[1]
    c2 = row[2]
    c3 = row[3]
    val = row[0] + d * (c1 + d * (c2 + d * c3))
    der = c1 + d * (2.0 * c2 + d * 3.0 * c3)
    return val, der


@njit(cache=True)
def _grouped_spline_eval(coeffs, row0, x0, h, nseg, x_max, y_last,
                         clamp_low, zero_above, x, g):
    p = x.shape[0]
    val = np.empty(p, dtype=np.float64)
    der = np.empty(p, dtype=np.float64)
    for q in range(p):
        v, d = _eval_point(coeffs, row0, x0, h, nseg, x_max, y_last,
                           clamp_low, zero_above, x[q], g[q])
        val[q] = v
        der[q] = d
    return val, der


def grouped_spline_eval(bank, x, member):
    """Batched multi-member spline evaluation through a packed bank."""
    coeffs, row0, x0, h, nseg, x_max, y_last, clamp_low, zero_above = bank
    x = np.ascontiguousarray(x, dtype=np.float64)
    g = np.ascontiguousarray(
        np.broadcast_to(np.asarray(member, dtype=np.int64), x.shape)
    )
    return _grouped_spline_eval(
        np.ascontiguousarray(coeffs), row0, x0, h, nseg, x_max, y_last,
        bool(clamp_low), bool(zero_above), x, g,
    )


@njit(cache=True)
def _neighbor_prefilter(positions, i, j, lengths, periodic, rmax,
                        inclusive, compute_r):
    p = i.shape[0]
    d = np.empty((p, 3), dtype=np.float64)
    r2 = np.empty(p, dtype=np.float64)
    keep = np.empty(p, dtype=np.bool_)
    rmax2 = rmax * rmax
    n_keep = 0
    for q in range(p):
        s = 0.0
        for ax in range(3):
            dd = positions[j[q], ax] - positions[i[q], ax]
            if periodic[ax]:
                ld = lengths[ax]
                dd -= ld * np.floor(dd / ld + 0.5)
            d[q, ax] = dd
            s += dd * dd
        r2[q] = s
        k = s <= rmax2 if inclusive else s < rmax2
        keep[q] = k
        if k:
            n_keep += 1
    oi = np.empty(n_keep, dtype=np.int64)
    oj = np.empty(n_keep, dtype=np.int64)
    n_geo = n_keep if compute_r else 0
    orij = np.empty((n_geo, 3), dtype=np.float64)
    orr = np.empty(n_geo, dtype=np.float64)
    w = 0
    for q in range(p):
        if keep[q]:
            oi[w] = i[q]
            oj[w] = j[q]
            if compute_r:
                orij[w, 0] = d[q, 0]
                orij[w, 1] = d[q, 1]
                orij[w, 2] = d[q, 2]
                orr[w] = np.sqrt(r2[q])
            w += 1
    return oi, oj, orij, orr


@njit(cache=True)
def _neighbor_geometry(positions, i, j, lengths, periodic):
    # the all-inside fast path: same per-pair arithmetic as
    # _neighbor_prefilter, no predicate and no compaction
    p = i.shape[0]
    orij = np.empty((p, 3), dtype=np.float64)
    orr = np.empty(p, dtype=np.float64)
    for q in range(p):
        s = 0.0
        for ax in range(3):
            dd = positions[j[q], ax] - positions[i[q], ax]
            if periodic[ax]:
                ld = lengths[ax]
                dd -= ld * np.floor(dd / ld + 0.5)
            orij[q, ax] = dd
            s += dd * dd
        orr[q] = np.sqrt(s)
    return orij, orr


def neighbor_prefilter(positions, i, j, lengths, periodic, rmax,
                       *, inclusive, compute_r, assume_inside=False):
    """Distance-filter candidate pairs at ``rmax`` (compiled loop).

    ``assume_inside=True`` trusts the caller's proof that every
    candidate passes (see the numpy backend's docstring): the compiled
    fast path computes the identical per-pair geometry and skips the
    predicate and compaction, emitting bitwise-identical values.
    """
    if assume_inside:
        i = np.ascontiguousarray(i, dtype=np.int64)
        j = np.ascontiguousarray(j, dtype=np.int64)
        if not compute_r:
            return (
                i, j,
                np.empty((0, 3), dtype=np.float64),
                np.empty(0, dtype=np.float64),
            )
        rij, r = _neighbor_geometry(
            np.ascontiguousarray(positions, dtype=np.float64),
            i, j,
            np.ascontiguousarray(lengths, dtype=np.float64),
            np.ascontiguousarray(periodic, dtype=np.bool_),
        )
        return i, j, rij, r
    return _neighbor_prefilter(
        np.ascontiguousarray(positions, dtype=np.float64),
        np.ascontiguousarray(i, dtype=np.int64),
        np.ascontiguousarray(j, dtype=np.int64),
        np.ascontiguousarray(lengths, dtype=np.float64),
        np.ascontiguousarray(periodic, dtype=np.bool_),
        float(rmax), bool(inclusive), bool(compute_r),
    )


@njit(cache=True)
def _fused_density_pass(i, j, r, ti, tj, coeffs, row0, x0, h, nseg,
                        x_max, y_last, clamp_low, zero_above, single,
                        n_atoms):
    p = i.shape[0]
    # Two accumulators filled in pair order, then summed elementwise:
    # exactly ``bincount(i, .) + bincount(j, .)`` — bitwise parity with
    # the numpy pass given identical per-pair values.
    acc_i = np.zeros(n_atoms, dtype=np.float64)
    acc_j = np.zeros(n_atoms, dtype=np.float64)
    d_ji = np.empty(p, dtype=np.float64)
    d_ij = np.empty(p, dtype=np.float64)
    for q in range(p):
        if single:
            v, d = _eval_point(coeffs, row0, x0, h, nseg, x_max, y_last,
                               clamp_low, zero_above, r[q], 0)
            acc_i[i[q]] += v
            acc_j[j[q]] += v
            d_ji[q] = d
            d_ij[q] = d
        else:
            v1, d1 = _eval_point(coeffs, row0, x0, h, nseg, x_max, y_last,
                                 clamp_low, zero_above, r[q], tj[q])
            v2, d2 = _eval_point(coeffs, row0, x0, h, nseg, x_max, y_last,
                                 clamp_low, zero_above, r[q], ti[q])
            acc_i[i[q]] += v1
            acc_j[j[q]] += v2
            d_ji[q] = d1
            d_ij[q] = d2
    return acc_i + acc_j, d_ji, d_ij


def fused_density_pass(i, j, r, ti, tj, rho_bank, n_atoms):
    """EAM stage 1 over a half pair list: one compiled density loop."""
    coeffs, row0, x0, h, nseg, x_max, y_last, clamp_low, zero_above = rho_bank
    return _fused_density_pass(
        np.ascontiguousarray(i, dtype=np.int64),
        np.ascontiguousarray(j, dtype=np.int64),
        np.ascontiguousarray(r, dtype=np.float64),
        np.ascontiguousarray(ti, dtype=np.int64),
        np.ascontiguousarray(tj, dtype=np.int64),
        np.ascontiguousarray(coeffs), row0, x0, h, nseg, x_max, y_last,
        bool(clamp_low), bool(zero_above), len(x0) == 1, n_atoms,
    )


@njit(cache=True)
def _fused_force_pass(i, j, rij, r, f_der, d_ji, d_ij, coeffs, row0,
                      x0, h, nseg, x_max, y_last, clamp_low, zero_above,
                      pm, n_atoms):
    p = i.shape[0]
    facc_i = np.zeros((n_atoms, 3), dtype=np.float64)
    facc_j = np.zeros((n_atoms, 3), dtype=np.float64)
    eacc_i = np.zeros(n_atoms, dtype=np.float64)
    eacc_j = np.zeros(n_atoms, dtype=np.float64)
    for q in range(p):
        phi_v, phi_d = _eval_point(coeffs, row0, x0, h, nseg, x_max,
                                   y_last, clamp_low, zero_above,
                                   r[q], pm[q])
        ia = i[q]
        ja = j[q]
        s = f_der[ia] * d_ji[q] + f_der[ja] * d_ij[q] + phi_d
        rq = r[q]
        for ax in range(3):
            f = s * (rij[q, ax] / rq)
            facc_i[ia, ax] += f
            facc_j[ja, ax] += f
        w = 0.5 * phi_v
        eacc_i[ia] += w
        eacc_j[ja] += w
    return eacc_i + eacc_j, facc_i - facc_j


def fused_force_pass(i, j, rij, r, f_der, d_ji, d_ij, phi_bank,
                     phi_member, n_atoms):
    """EAM stage 2 over a half pair list: one compiled force loop."""
    r = np.ascontiguousarray(r, dtype=np.float64)
    if np.any(r == 0.0):
        # the numpy pass raises out of its guarded unit-vector division;
        # a compiled loop would silently emit inf/nan instead
        raise FloatingPointError(
            "zero pair distance in fused_force_pass (coincident atoms)"
        )
    coeffs, row0, x0, h, nseg, x_max, y_last, clamp_low, zero_above = phi_bank
    pm = np.ascontiguousarray(
        np.broadcast_to(np.asarray(phi_member, dtype=np.int64), r.shape)
    )
    return _fused_force_pass(
        np.ascontiguousarray(i, dtype=np.int64),
        np.ascontiguousarray(j, dtype=np.int64),
        np.ascontiguousarray(rij, dtype=np.float64), r,
        np.ascontiguousarray(f_der, dtype=np.float64),
        np.ascontiguousarray(d_ji, dtype=np.float64),
        np.ascontiguousarray(d_ij, dtype=np.float64),
        np.ascontiguousarray(coeffs), row0, x0, h, nseg, x_max, y_last,
        bool(clamp_low), bool(zero_above), pm, n_atoms,
    )


@njit(cache=True)
def _force_integrate(positions, velocities, forces, masses, dt, mvv2e):
    n = positions.shape[0]
    for a in range(n):
        # divide (not reciprocal-multiply): the exact scalar sequence of
        # the numpy pass, so the fold is bitwise across backends
        denom = masses[a] * mvv2e
        for ax in range(3):
            acc = forces[a, ax] / denom
            velocities[a, ax] += acc * dt
            positions[a, ax] += velocities[a, ax] * dt


def force_integrate(positions, velocities, forces, masses, dt, mvv2e):
    """Leap-frog kick + drift folded onto the force output, in place.

    ``positions``/``velocities`` must be the simulation's own
    C-contiguous float64 arrays — they are mutated, never copied.
    """
    _force_integrate(
        positions, velocities,
        np.ascontiguousarray(forces, dtype=np.float64),
        np.ascontiguousarray(masses, dtype=np.float64),
        float(dt), float(mvv2e),
    )


def warmup() -> None:
    """Compile every kernel against tiny representative inputs.

    Invoked once per process via
    :func:`repro.kernels.warmup_backend`; with ``NUMBA_CACHE_DIR`` set
    the compiled artifacts persist and this collapses to a cache load.
    """
    coeffs = np.array(
        [[0.0, 1.0, 0.0, 0.0], [1.0, 1.0, 0.1, 0.01]], dtype=np.float64
    )
    k = np.array([0, 1], dtype=np.int64)
    dx = np.array([0.1, 0.2], dtype=np.float64)
    spline_eval(coeffs, k, dx)
    idx = np.array([0, 1], dtype=np.int64)
    accumulate_scalar(idx, dx, 2)
    accumulate_vec3(idx, np.ones((2, 3)), 2)
    bank = (
        coeffs,
        np.array([0, 1], dtype=np.int64),       # row0
        np.array([0.0, 0.0], dtype=np.float64),  # x0
        np.array([0.5, 0.5], dtype=np.float64),  # h
        np.array([1, 1], dtype=np.int64),        # nseg
        np.array([0.5, 0.5], dtype=np.float64),  # x_max
        np.array([1.0, 1.0], dtype=np.float64),  # y_last
        False, True,
    )
    x = np.array([0.1, 0.3], dtype=np.float64)
    grouped_spline_eval(bank, x, np.array([0, 1], dtype=np.int64))
    pos = np.array([[0.0, 0.0, 0.0], [0.3, 0.0, 0.0]], dtype=np.float64)
    ci = np.array([0], dtype=np.int64)
    cj = np.array([1], dtype=np.int64)
    lengths = np.ones(3, dtype=np.float64)
    periodic = np.zeros(3, dtype=np.bool_)
    neighbor_prefilter(pos, ci, cj, lengths, periodic, 1.0,
                       inclusive=True, compute_r=True)
    types = np.zeros(2, dtype=np.int64)
    _, d_ji, d_ij = fused_density_pass(
        ci, cj, np.array([0.3]), types[ci], types[cj], bank, 2
    )
    fused_force_pass(
        ci, cj, np.array([[0.3, 0.0, 0.0]]), np.array([0.3]),
        np.zeros(2), d_ji, d_ij, bank, 0, 2,
    )
    force_integrate(pos.copy(), np.zeros((2, 3)), np.zeros((2, 3)),
                    np.ones(2), 0.002, 1.0)
