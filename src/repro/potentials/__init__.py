"""Interatomic potentials: tabulated EAM, analytic builders, and LJ.

The Embedded Atom Method implementation mirrors the paper's structure
(Sec. II-A): per-type electron-density splines ``rho_i(r)``, embedding
splines ``F_i(rho)``, and per-pair interaction splines ``phi_ij(r)``,
all represented as polynomial spline tables (:mod:`repro.potentials.spline`).

Potentials for the paper's three benchmark metals (Cu, W, Ta) are
constructed from material data via the Rose universal equation of state
(:mod:`repro.potentials.builder`); see DESIGN.md for why this substitution
preserves the published interaction counts and crystal behaviour.
"""

from repro.potentials.spline import UniformCubicSpline
from repro.potentials.base import Potential, PairDistanceCap
from repro.potentials.eam import EAMPotential, EAMTables
from repro.potentials.builder import build_rose_eam
from repro.potentials.elements import (
    ELEMENTS,
    ElementData,
    make_element_potential,
)
from repro.potentials.lennard_jones import LennardJones

__all__ = [
    "UniformCubicSpline",
    "Potential",
    "PairDistanceCap",
    "EAMPotential",
    "EAMTables",
    "build_rose_eam",
    "ELEMENTS",
    "ElementData",
    "make_element_potential",
    "LennardJones",
]
