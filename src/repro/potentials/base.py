"""Potential interface shared by EAM and pairwise potentials.

A :class:`Potential` consumes a *pair table* — flat arrays describing all
interacting (i, j) pairs within the cutoff — and produces per-atom
energies and forces.  The pair table abstraction lets the same kernels
serve the reference MD engine (cell-list neighbor search) and the
lockstep WSE simulator (candidate-neighborhood search), which is exactly
the property the paper exploits: the physics is independent of how
neighbors were found.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["PairTable", "Potential", "PairDistanceCap"]


@dataclass
class PairTable:
    """Flat pair list for force evaluation.

    Attributes
    ----------
    i, j:
        Atom indices of each directed pair.  Full (double-counted) lists
        contain both (i, j) and (j, i); ``half`` marks lists that contain
        each pair once.
    rij:
        Displacement vectors ``r_j - r_i`` for each pair, shape (P, 3).
    r:
        Euclidean pair distances, shape (P,).
    half:
        Whether each undirected pair appears once (True) or twice.
    """

    i: np.ndarray
    j: np.ndarray
    rij: np.ndarray
    r: np.ndarray
    half: bool = False

    def __post_init__(self) -> None:
        p = len(self.i)
        if not (len(self.j) == p and self.rij.shape == (p, 3) and len(self.r) == p):
            raise ValueError(
                "inconsistent pair table shapes: "
                f"i={len(self.i)} j={len(self.j)} rij={self.rij.shape} r={len(self.r)}"
            )

    @property
    def n_pairs(self) -> int:
        """Number of stored (directed or half) pairs."""
        return len(self.i)

    def directed(self) -> "PairTable":
        """A directed (double-counted) view of this table.

        The hot paths store each undirected pair once; consumers that
        index per-atom neighborhoods directly (RDF histograms,
        centro-symmetry sorting) still want both (i, j) and (j, i).
        Returns ``self`` unchanged when already directed.
        """
        if not self.half:
            return self
        return PairTable(
            i=np.concatenate([self.i, self.j]),
            j=np.concatenate([self.j, self.i]),
            rij=np.concatenate([self.rij, -self.rij]),
            r=np.concatenate([self.r, self.r]),
            half=False,
        )


@dataclass
class PairDistanceCap:
    """Guard against unphysically close approaches.

    EAM spline tables start at a small but nonzero distance; pairs below
    ``r_min`` indicate a broken configuration (overlapping atoms).  The
    kernels raise rather than silently extrapolating into garbage.
    """

    r_min: float = 0.25

    def check(self, r: np.ndarray) -> None:
        """Raise ``FloatingPointError`` if any distance is below the cap."""
        if len(r) and float(np.min(r)) < self.r_min:
            raise FloatingPointError(
                f"pair distance {float(np.min(r)):.4f} A below minimum "
                f"{self.r_min} A: atoms are overlapping"
            )


class Potential(ABC):
    """Abstract interatomic potential.

    Concrete implementations provide per-atom potential energies and
    forces from a :class:`PairTable`.  ``cutoff`` is the interaction
    cutoff radius in angstroms; neighbor searches must include every pair
    with ``r < cutoff``.

    ``supports_tracer`` marks implementations whose :meth:`compute`
    accepts a ``tracer`` keyword and emits per-phase spans (density /
    embedding / pair_force); callers check it before passing one, so
    plain pair potentials need not change.
    """

    supports_tracer = False

    @property
    @abstractmethod
    def cutoff(self) -> float:
        """Interaction cutoff radius (A)."""

    @abstractmethod
    def compute(
        self,
        n_atoms: int,
        pairs: PairTable,
        types: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-atom energies (N,) and forces (N, 3) from a pair table."""

    def total_energy(
        self,
        n_atoms: int,
        pairs: PairTable,
        types: np.ndarray | None = None,
    ) -> float:
        """Total potential energy (eV)."""
        e, _ = self.compute(n_atoms, pairs, types)
        return float(np.sum(e))
