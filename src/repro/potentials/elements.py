"""Material data for the paper's three benchmark metals.

Cutoffs follow the paper's Table VI (``r_cut / r_lattice`` with
``r_lattice`` the nearest-neighbor distance): Cu 1.94, W 2.02, Ta 1.39.
These reproduce the per-atom interaction counts of Table I for bulk
atoms (Cu 42, W 58, Ta 14; the paper lists W as 59 from its thermally
displaced slab).  The Table I benchmark replications and neighborhood
half-widths ``b`` (candidate counts ``(2b+1)^2 - 1``) are recorded here
too so benchmarks read them from one place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import GPA_TO_EV_PER_A3
from repro.lattice.cells import BCC, FCC, BravaisCell
from repro.potentials.builder import RoseEAMSpec, build_rose_eam
from repro.potentials.eam import EAMPotential, EAMTables

__all__ = ["ElementData", "ELEMENTS", "make_element_tables", "make_element_potential"]


@dataclass(frozen=True)
class ElementData:
    """Everything the benchmarks need to know about one element.

    Attributes
    ----------
    symbol, name:
        Chemical identification.
    cell:
        Crystal structure.
    lattice_constant:
        ``a0`` in angstroms (room-temperature experimental value).
    cohesive_energy:
        eV/atom.
    bulk_modulus_gpa:
        GPa.
    mass:
        g/mol.
    cutoff_nn:
        Interaction cutoff in nearest-neighbor units (paper Table VI).
    neighborhood_b:
        Candidate-neighborhood half-width used in Table I
        (candidates = (2b+1)^2 - 1).
    interactions:
        Per-atom interaction count reported in Table I.
    replication:
        (nx, ny, nz) of the 801,792-atom Table I benchmark slab.
    """

    symbol: str
    name: str
    cell: BravaisCell
    lattice_constant: float
    cohesive_energy: float
    bulk_modulus_gpa: float
    mass: float
    cutoff_nn: float
    neighborhood_b: int
    interactions: int
    replication: tuple[int, int, int]

    @property
    def nn_distance(self) -> float:
        """Equilibrium nearest-neighbor distance (A)."""
        return self.cell.nn_distance(self.lattice_constant)

    @property
    def cutoff(self) -> float:
        """Absolute interaction cutoff (A)."""
        return self.cutoff_nn * self.nn_distance

    @property
    def candidates(self) -> int:
        """Candidate count per atom, (2b+1)^2 - 1."""
        side = 2 * self.neighborhood_b + 1
        return side * side - 1

    @property
    def bulk_modulus(self) -> float:
        """Bulk modulus in eV/A^3."""
        return self.bulk_modulus_gpa * GPA_TO_EV_PER_A3

    @property
    def n_atoms_table1(self) -> int:
        """Atom count of the Table I benchmark slab."""
        nx, ny, nz = self.replication
        return nx * ny * nz * self.cell.atoms_per_cell

    def rose_spec(self) -> RoseEAMSpec:
        """Builder spec for this element's Rose-EOS EAM potential."""
        return RoseEAMSpec(
            cell=self.cell,
            lattice_constant=self.lattice_constant,
            cohesive_energy=self.cohesive_energy,
            bulk_modulus=self.bulk_modulus,
            cutoff=self.cutoff,
        )


ELEMENTS: dict[str, ElementData] = {
    "Cu": ElementData(
        symbol="Cu",
        name="copper",
        cell=FCC,
        lattice_constant=3.615,
        cohesive_energy=3.54,
        bulk_modulus_gpa=138.0,
        mass=63.546,
        cutoff_nn=1.94,
        neighborhood_b=7,
        interactions=42,
        replication=(174, 192, 6),
    ),
    "W": ElementData(
        symbol="W",
        name="tungsten",
        cell=BCC,
        lattice_constant=3.165,
        cohesive_energy=8.90,
        bulk_modulus_gpa=310.0,
        mass=183.84,
        cutoff_nn=2.02,
        neighborhood_b=7,
        interactions=59,
        replication=(256, 261, 6),
    ),
    "Ta": ElementData(
        symbol="Ta",
        name="tantalum",
        cell=BCC,
        lattice_constant=3.304,
        cohesive_energy=8.10,
        bulk_modulus_gpa=194.0,
        mass=180.9479,
        cutoff_nn=1.39,
        neighborhood_b=4,
        interactions=14,
        replication=(256, 261, 6),
    ),
}

# Built potentials are expensive (EOS inversion); cache per element.
_TABLES_CACHE: dict[str, EAMTables] = {}


def make_element_tables(symbol: str) -> EAMTables:
    """Rose-EOS EAM tables for a benchmark element (cached)."""
    if symbol not in ELEMENTS:
        raise ValueError(f"unknown element {symbol!r}; known: {sorted(ELEMENTS)}")
    if symbol not in _TABLES_CACHE:
        _TABLES_CACHE[symbol] = build_rose_eam(ELEMENTS[symbol].rose_spec())
    return _TABLES_CACHE[symbol]


def make_element_potential(symbol: str) -> EAMPotential:
    """Ready-to-use EAM potential for Cu, W, or Ta."""
    return EAMPotential(make_element_tables(symbol))
