"""DYNAMO *funcfl* (LAMMPS ``pair_style eam``) single-element reader.

The older sibling of setfl: one element per file, with the embedding
function, an *effective charge* function Z(r), and the density function.
The pair potential is derived from Z via

    phi(r) = 27.2 * 0.529 * Z_i(r) * Z_j(r) / r   (eV, Hartree-Bohr units)

Several classic potentials (including the Adams Cu family the paper
cites) circulate in this format, so supporting it widens what can be
dropped into the engines.

Format::

    line 1: comment
    line 2: atomic-number mass lattice-constant lattice-type
    line 3: Nrho drho Nr dr cutoff
    F(rho)  -- Nrho values
    Z(r)    -- Nr values
    rho(r)  -- Nr values
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.potentials.eam import EAMTables
from repro.potentials.spline import UniformCubicSpline

__all__ = ["read_funcfl"]

#: Hartree * Bohr in eV * A — the conversion constant LAMMPS uses.
_HARTREE_BOHR = 27.2 * 0.529


def read_funcfl(path: str | Path | io.TextIOBase) -> EAMTables:
    """Parse a funcfl file into single-element spline tables."""
    if isinstance(path, io.TextIOBase):
        text = path.read()
        source = "<stream>"
    else:
        text = Path(path).read_text()
        source = str(path)
    lines = text.splitlines()
    if len(lines) < 4:
        raise ValueError(f"{source}: truncated funcfl file ({len(lines)} lines)")
    comment = lines[0]
    hdr = lines[1].split()
    if len(hdr) < 4:
        raise ValueError(f"{source}: malformed element header {lines[1]!r}")
    z_num, mass, alat, lattice = (
        int(float(hdr[0])), float(hdr[1]), float(hdr[2]), hdr[3]
    )
    grid = lines[2].split()
    if len(grid) < 5:
        raise ValueError(f"{source}: malformed grid line {lines[2]!r}")
    n_rho, d_rho, n_r, d_r, cutoff = (
        int(grid[0]), float(grid[1]), int(grid[2]), float(grid[3]),
        float(grid[4]),
    )
    try:
        values = np.array(" ".join(lines[3:]).split(), dtype=np.float64)
    except ValueError as err:
        raise ValueError(f"{source}: non-numeric table data: {err}") from None
    need = n_rho + 2 * n_r
    if len(values) < need:
        raise ValueError(
            f"{source}: expected {need} table values, found {len(values)}"
        )
    f_vals = values[:n_rho]
    z_vals = values[n_rho:n_rho + n_r]
    rho_vals = values[n_rho + n_r:need]

    r = d_r * np.arange(n_r)
    phi_vals = np.empty(n_r)
    phi_vals[1:] = _HARTREE_BOHR * z_vals[1:] ** 2 / r[1:]
    phi_vals[0] = 2.0 * phi_vals[1] - phi_vals[2]

    return EAMTables(
        rho=[UniformCubicSpline(0.0, d_r, rho_vals, extrapolate_low="clamp",
                                zero_above=True)],
        embed=[UniformCubicSpline(0.0, d_rho, f_vals,
                                  extrapolate_low="clamp", zero_above=False)],
        phi={(0, 0): UniformCubicSpline(0.0, d_r, phi_vals,
                                        extrapolate_low="clamp",
                                        zero_above=True)},
        cutoff=cutoff,
        meta={
            "source": source,
            "format": "funcfl",
            "comment": comment,
            "elements": [{"z": z_num, "mass": mass,
                          "lattice_constant": alat, "lattice": lattice}],
        },
    )
