"""Construct EAM potentials from material data via the Rose EOS.

This is the Foiles-style "effective medium" normalization: pick simple
analytic forms for the electron density ``f(r)`` and the (repulsive)
pair interaction ``phi(r)``, then *define* the embedding function so
that the energy of the uniformly expanded/compressed perfect crystal
exactly follows the Rose universal equation of state:

    F(rho_bar(s)) = E_rose(s) - E_pair(s)      for every scale s.

The resulting potential reproduces the target lattice constant,
cohesive energy and bulk modulus by construction, which is what matters
for the paper's workloads (room-temperature crystals of Cu, W, Ta with
the paper's cutoffs).  See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.interpolate import PchipInterpolator

from repro.lattice.cells import BravaisCell
from repro.lattice.neighbors_ideal import lattice_sum
from repro.potentials.eam import EAMTables
from repro.potentials.rose import RoseEOS
from repro.potentials.spline import UniformCubicSpline

__all__ = ["RoseEAMSpec", "build_rose_eam", "smootherstep_cut"]


def smootherstep_cut(r: np.ndarray, r_start: float, r_cut: float) -> np.ndarray:
    """C2 cutoff taper: 1 below ``r_start``, 0 at/above ``r_cut``.

    Uses the quintic smootherstep so value, first and second derivatives
    vanish at the cutoff — forces stay continuous as atoms cross it.
    """
    r = np.asarray(r, dtype=np.float64)
    if r_cut <= r_start:
        raise ValueError(f"r_cut {r_cut} must exceed r_start {r_start}")
    t = np.clip((r - r_start) / (r_cut - r_start), 0.0, 1.0)
    s = t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
    return 1.0 - s


@dataclass(frozen=True)
class RoseEAMSpec:
    """Inputs for :func:`build_rose_eam`.

    Parameters
    ----------
    cell:
        Crystal structure (FCC for Cu, BCC for W/Ta).
    lattice_constant:
        Equilibrium conventional-cell lattice constant ``a0`` (A).
    cohesive_energy:
        ``Ec`` (eV/atom, positive).
    bulk_modulus:
        ``B`` (eV/A^3) — use :data:`repro.constants.GPA_TO_EV_PER_A3`.
    cutoff:
        Interaction cutoff radius (A).
    beta:
        Decay rate of the electron density, per ``r/re``.
    alpha:
        Decay rate of the repulsive pair term, per ``r/re``.
    pair_amplitude:
        ``phi(re)`` before tapering (eV); sets the pair/embedding split.
    taper_width:
        Width of the smooth cutoff taper, as a fraction of the cutoff.
    """

    cell: BravaisCell
    lattice_constant: float
    cohesive_energy: float
    bulk_modulus: float
    cutoff: float
    beta: float = 5.0
    alpha: float = 7.5
    pair_amplitude: float = 0.5
    taper_width: float = 0.15

    def __post_init__(self) -> None:
        nn = self.cell.nn_distance(self.lattice_constant)
        if self.cutoff <= nn:
            raise ValueError(
                f"cutoff {self.cutoff} A does not reach the nearest "
                f"neighbor shell at {nn:.3f} A"
            )


def build_rose_eam(
    spec: RoseEAMSpec,
    *,
    n_r_knots: int = 2000,
    n_rho_knots: int = 2000,
    n_scales: int = 400,
    r_table_min: float = 0.5,
) -> EAMTables:
    """Build single-element EAM spline tables satisfying the Rose EOS."""
    cell = spec.cell
    a0 = spec.lattice_constant
    re = cell.nn_distance(a0)
    rc = spec.cutoff
    r_start = rc * (1.0 - spec.taper_width)

    def density_fn(r: float) -> float:
        return float(
            math.exp(-spec.beta * (r / re - 1.0))
            * smootherstep_cut(np.asarray(r), r_start, rc)
        )

    def pair_fn(r: float) -> float:
        return float(
            spec.pair_amplitude
            * math.exp(-spec.alpha * (r / re - 1.0))
            * smootherstep_cut(np.asarray(r), r_start, rc)
        )

    eos = RoseEOS(
        cohesive_energy=spec.cohesive_energy,
        bulk_modulus=spec.bulk_modulus,
        atomic_volume=cell.atomic_volume(a0),
    )

    # --- sample the EOS path -------------------------------------------------
    # Scales run from strong compression to where the last shell leaves
    # the cutoff (rho_bar -> 0).
    s_min = 0.70
    s_max = rc / re  # nearest shell exits the cutoff here
    scales = np.linspace(s_min, s_max, n_scales)
    rho_path = np.array(
        [lattice_sum(cell, density_fn, rc, a0, scale=s) for s in scales]
    )
    pair_path = 0.5 * np.array(
        [lattice_sum(cell, pair_fn, rc, a0, scale=s) for s in scales]
    )
    embed_path = eos.energy(scales) - pair_path

    # rho_bar decreases monotonically with expansion; make it the x axis.
    order = np.argsort(rho_path)
    rho_sorted = rho_path[order]
    f_sorted = embed_path[order]
    if np.any(np.diff(rho_sorted) <= 0):
        raise RuntimeError(
            "density along the EOS path is not strictly monotone; "
            "increase beta or reduce the scale range"
        )

    # Anchor F(0) = 0 so isolated atoms carry zero energy.  The path's
    # smallest sampled density is ~0 (last shell tapered out), so the
    # extension is a short smooth segment.
    rho_lo = float(rho_sorted[0])
    f_lo = float(f_sorted[0])
    if rho_lo > 1e-12:
        rho_sorted = np.concatenate([[0.0], rho_sorted])
        # continue toward zero proportionally (PCHIP keeps it smooth)
        f_sorted = np.concatenate([[0.0], f_sorted])
    else:
        f_sorted[0] = 0.0
    del rho_lo, f_lo

    embed_interp = PchipInterpolator(rho_sorted, f_sorted)
    rho_max_table = float(rho_sorted[-1]) * 1.05
    rho_grid = np.linspace(0.0, rho_max_table, n_rho_knots)
    f_grid = np.where(
        rho_grid <= rho_sorted[-1],
        embed_interp(np.minimum(rho_grid, rho_sorted[-1])),
        # linear continuation beyond the sampled compression range
        f_sorted[-1]
        + embed_interp.derivative()(rho_sorted[-1]) * (rho_grid - rho_sorted[-1]),
    )
    embed_spline = UniformCubicSpline(
        0.0,
        rho_grid[1] - rho_grid[0],
        f_grid,
        extrapolate_low="clamp",
        zero_above=False,
    )

    # --- r-space tables -------------------------------------------------------
    r_grid = np.linspace(r_table_min, rc, n_r_knots)
    h_r = r_grid[1] - r_grid[0]
    rho_table = np.array([density_fn(r) for r in r_grid])
    phi_table = np.array([pair_fn(r) for r in r_grid])
    rho_spline = UniformCubicSpline(
        r_table_min, h_r, rho_table, extrapolate_low="linear", zero_above=True
    )
    phi_spline = UniformCubicSpline(
        r_table_min, h_r, phi_table, extrapolate_low="linear", zero_above=True
    )

    return EAMTables(
        rho=[rho_spline],
        embed=[embed_spline],
        phi={(0, 0): phi_spline},
        cutoff=rc,
        meta={
            "construction": "rose-eos",
            "structure": cell.name,
            "lattice_constant": a0,
            "cohesive_energy": spec.cohesive_energy,
            "bulk_modulus": spec.bulk_modulus,
            "beta": spec.beta,
            "alpha": spec.alpha,
            "pair_amplitude": spec.pair_amplitude,
            "taper_width": spec.taper_width,
        },
    )
