"""Rose universal equation of state (Rose, Smith, Guinea & Ferrante 1984).

The cohesive energy per atom of a metal under uniform expansion is well
described by the universal form

    E(a*) = -Ec (1 + a*) exp(-a*),
    a*    = (a / a0 - 1) / sqrt(Ec / (9 B Omega)),

where ``Ec`` is the cohesive energy, ``B`` the bulk modulus, ``Omega``
the equilibrium atomic volume, and ``a`` the lattice parameter.  EAM
potentials constructed to satisfy this relation exactly (Foiles-style
normalization) reproduce lattice constant, cohesive energy, and bulk
modulus *by construction* — see :mod:`repro.potentials.builder`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["RoseEOS"]


@dataclass(frozen=True)
class RoseEOS:
    """Universal energy/lattice-scale relation for one material.

    Parameters
    ----------
    cohesive_energy:
        ``Ec`` in eV/atom (positive number; the bound-state energy is
        ``-Ec``).
    bulk_modulus:
        ``B`` in eV/A^3.
    atomic_volume:
        ``Omega`` in A^3/atom.
    """

    cohesive_energy: float
    bulk_modulus: float
    atomic_volume: float

    def __post_init__(self) -> None:
        if self.cohesive_energy <= 0:
            raise ValueError(f"Ec must be positive, got {self.cohesive_energy}")
        if self.bulk_modulus <= 0:
            raise ValueError(f"B must be positive, got {self.bulk_modulus}")
        if self.atomic_volume <= 0:
            raise ValueError(f"Omega must be positive, got {self.atomic_volume}")

    @property
    def length_scale(self) -> float:
        """The denominator ``sqrt(Ec / 9 B Omega)`` in the reduced scale."""
        return math.sqrt(
            self.cohesive_energy / (9.0 * self.bulk_modulus * self.atomic_volume)
        )

    def reduced(self, scale: np.ndarray) -> np.ndarray:
        """Reduced lattice coordinate ``a*`` from scale ``a / a0``."""
        return (np.asarray(scale, dtype=np.float64) - 1.0) / self.length_scale

    def energy(self, scale: np.ndarray) -> np.ndarray:
        """Cohesive energy per atom (eV) at lattice scale ``a / a0``."""
        a_star = self.reduced(scale)
        return -self.cohesive_energy * (1.0 + a_star) * np.exp(-a_star)

    def energy_derivative(self, scale: np.ndarray) -> np.ndarray:
        """d E / d(scale); zero at the equilibrium scale of 1."""
        a_star = self.reduced(scale)
        # dE/da* = Ec a* exp(-a*);  chain rule through the reduced coordinate.
        return self.cohesive_energy * a_star * np.exp(-a_star) / self.length_scale

    def curvature_check(self) -> float:
        """Second derivative of E wrt scale at equilibrium.

        Equals ``9 B Omega`` — useful as an internal consistency check
        and in tests.
        """
        return self.cohesive_energy / self.length_scale**2
