"""Lennard-Jones pair potential (paper Sec. II-B baseline).

The paper cites LAMMPS LJ rates for 1k-atom systems as the conventional
strong-scaling limit (<10k steps/s on a V100, ~25k steps/s on a
dual-socket CPU).  We include LJ so the small-system rate comparison
benchmark can run the identical workload.
"""

from __future__ import annotations

import numpy as np

from repro.potentials.base import PairDistanceCap, PairTable, Potential

__all__ = ["LennardJones"]


class LennardJones(Potential):
    """Truncated, energy-shifted 12-6 Lennard-Jones potential.

        U(r) = 4 eps [ (sigma/r)^12 - (sigma/r)^6 ] - U(rc)   for r < rc.
    """

    def __init__(
        self,
        epsilon: float = 1.0,
        sigma: float = 1.0,
        cutoff: float = 2.5,
        cap: PairDistanceCap | None = None,
    ) -> None:
        if epsilon <= 0 or sigma <= 0:
            raise ValueError(f"epsilon/sigma must be positive: {epsilon}, {sigma}")
        if cutoff <= sigma:
            raise ValueError(f"cutoff {cutoff} must exceed sigma {sigma}")
        self.epsilon = float(epsilon)
        self.sigma = float(sigma)
        self._cutoff = float(cutoff)
        self.cap = cap or PairDistanceCap(r_min=0.05 * sigma)
        sr6 = (sigma / cutoff) ** 6
        self.shift = 4.0 * epsilon * (sr6 * sr6 - sr6)

    @property
    def cutoff(self) -> float:
        return self._cutoff

    def pair_energy(self, r: np.ndarray) -> np.ndarray:
        """Shifted pair energy at distances ``r`` (beyond cutoff: 0)."""
        r = np.asarray(r, dtype=np.float64)
        sr6 = (self.sigma / r) ** 6
        e = 4.0 * self.epsilon * (sr6 * sr6 - sr6) - self.shift
        return np.where(r < self._cutoff, e, 0.0)

    def pair_force_scalar(self, r: np.ndarray) -> np.ndarray:
        """dU/dr at distances ``r`` (beyond cutoff: 0)."""
        r = np.asarray(r, dtype=np.float64)
        sr6 = (self.sigma / r) ** 6
        d = -24.0 * self.epsilon * (2.0 * sr6 * sr6 - sr6) / r
        return np.where(r < self._cutoff, d, 0.0)

    def pair_energy_force(
        self, r: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused shifted energy and dU/dr from a single ``(sigma/r)^6``."""
        r = np.asarray(r, dtype=np.float64)
        sr6 = (self.sigma / r) ** 6
        sr12 = sr6 * sr6
        within = r < self._cutoff
        e = np.where(within, 4.0 * self.epsilon * (sr12 - sr6) - self.shift, 0.0)
        d = np.where(
            within, -24.0 * self.epsilon * (2.0 * sr12 - sr6) / r, 0.0
        )
        return e, d

    def compute(
        self,
        n_atoms: int,
        pairs: PairTable,
        types: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        self.cap.check(pairs.r)
        energies = np.zeros(n_atoms, dtype=np.float64)
        forces = np.zeros((n_atoms, 3), dtype=np.float64)
        if pairs.n_pairs == 0:
            return energies, forces
        e, s = self.pair_energy_force(pairs.r)
        unit = pairs.rij / pairs.r[:, None]
        fvec = s[:, None] * unit
        for axis in range(3):
            forces[:, axis] += np.bincount(
                pairs.i, weights=fvec[:, axis], minlength=n_atoms
            )
        if pairs.half:
            for axis in range(3):
                forces[:, axis] -= np.bincount(
                    pairs.j, weights=fvec[:, axis], minlength=n_atoms
                )
            energies += 0.5 * np.bincount(pairs.i, weights=e, minlength=n_atoms)
            energies += 0.5 * np.bincount(pairs.j, weights=e, minlength=n_atoms)
        else:
            energies += 0.5 * np.bincount(pairs.i, weights=e, minlength=n_atoms)
        return energies, forces
