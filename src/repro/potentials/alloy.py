"""Binary alloy EAM construction by Johnson mixing.

The paper's potential machinery is explicitly heterogeneous ("the
density, force, and potential functions are atom-dependent, allowing
for heterogeneous ensembles of atoms", Sec. II-A).  This module builds
two-component tables from two single-element potentials using the
standard Johnson (1989) cross-pair construction:

    phi_AB(r) = 1/2 [ rho_B(r)/rho_A(r) phi_AA(r)
                    + rho_A(r)/rho_B(r) phi_BB(r) ]

which leaves each element's bulk properties untouched while defining a
physically reasonable A-B interaction.  The cross pair vanishes beyond
the smaller of the two cutoffs (where one density has tapered to zero
the ratio is meaningless, and the interaction is negligible anyway).
"""

from __future__ import annotations

import numpy as np

from repro.potentials.eam import EAMTables
from repro.potentials.spline import UniformCubicSpline

__all__ = ["mix_tables"]


def mix_tables(
    a: EAMTables,
    b: EAMTables,
    *,
    n_r_knots: int = 2000,
    r_table_min: float = 0.5,
    density_floor: float = 1e-6,
) -> EAMTables:
    """Combine two single-element tables into a binary-alloy table set.

    Type 0 is element ``a``, type 1 is element ``b``.  Raises if either
    input already describes more than one element.
    """
    if a.n_types != 1 or b.n_types != 1:
        raise ValueError(
            f"mix_tables needs single-element inputs, got "
            f"{a.n_types} and {b.n_types} types"
        )
    cutoff = max(a.cutoff, b.cutoff)
    cross_cut = min(a.cutoff, b.cutoff)
    r = np.linspace(r_table_min, cutoff, n_r_knots)
    h = r[1] - r[0]

    rho_a = a.rho[0](r)
    rho_b = b.rho[0](r)
    phi_aa = a.phi[(0, 0)](r)
    phi_bb = b.phi[(0, 0)](r)
    safe = (
        (rho_a > density_floor) & (rho_b > density_floor) & (r < cross_cut)
    )
    phi_ab = np.zeros_like(r)
    with np.errstate(divide="ignore", invalid="ignore"):
        mixed = 0.5 * (
            rho_b / rho_a * phi_aa + rho_a / rho_b * phi_bb
        )
    phi_ab[safe] = mixed[safe]

    def respline(vals: np.ndarray) -> UniformCubicSpline:
        return UniformCubicSpline(
            r_table_min, h, vals, extrapolate_low="linear", zero_above=True
        )

    return EAMTables(
        rho=[respline(rho_a), respline(rho_b)],
        embed=[a.embed[0], b.embed[0]],
        phi={
            (0, 0): respline(phi_aa),
            (1, 1): respline(phi_bb),
            (0, 1): respline(phi_ab),
        },
        cutoff=cutoff,
        meta={
            "construction": "johnson-mix",
            "components": [a.meta.get("structure"), b.meta.get("structure")],
            "cross_cutoff": cross_cut,
        },
    )
