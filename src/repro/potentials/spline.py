"""Uniform-knot cubic spline tables with vectorized evaluation.

The WSE implementation in the paper stores every potential component
(``rho_i``, ``F_i``, ``phi_ij``) as a polynomial spline table in each
tile's SRAM and evaluates it with a segment lookup plus a low-order
polynomial (Table III rows "Spline segment" / "Density evaluation").
This module provides the same representation for the host-side code:
a natural cubic spline on uniformly spaced knots, evaluated by

1. ``k, dx = segment(x)`` — integer segment index and local offset,
2. a cubic polynomial in ``dx`` with per-segment coefficients.

Evaluation is fully vectorized over NumPy arrays and returns both the
value and the first derivative, because EAM forces need ``rho'``,
``phi'`` and ``F'`` (Eq. 4 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.kernels import active_backend
from repro.obs import metrics

__all__ = [
    "UniformCubicSpline",
    "SplineGroup",
    "natural_cubic_second_derivatives",
]


def natural_cubic_second_derivatives(y: np.ndarray, h: float) -> np.ndarray:
    """Second derivatives of a natural cubic spline on uniform knots.

    Solves the standard tridiagonal system with zero curvature at both
    ends.  ``y`` are knot values, ``h`` the uniform knot spacing.
    """
    n = len(y)
    if n < 2:
        raise ValueError(f"need at least 2 knots, got {n}")
    m = np.zeros(n, dtype=np.float64)
    if n == 2:
        return m
    # Interior equations: m[i-1] + 4 m[i] + m[i+1] = 6 (y[i-1]-2y[i]+y[i+1])/h^2
    rhs = 6.0 * (y[:-2] - 2.0 * y[1:-1] + y[2:]) / (h * h)
    # Thomas algorithm for the (n-2)x(n-2) system with diag 4, off-diag 1.
    k = n - 2
    cp = np.empty(k)
    dp = np.empty(k)
    cp[0] = 1.0 / 4.0
    dp[0] = rhs[0] / 4.0
    for i in range(1, k):
        denom = 4.0 - cp[i - 1]
        cp[i] = 1.0 / denom
        dp[i] = (rhs[i] - dp[i - 1]) / denom
    sol = np.empty(k)
    sol[-1] = dp[-1]
    for i in range(k - 2, -1, -1):
        sol[i] = dp[i] - cp[i] * sol[i + 1]
    m[1:-1] = sol
    return m


class UniformCubicSpline:
    """Natural cubic spline on uniformly spaced knots.

    Parameters
    ----------
    x0:
        Position of the first knot.
    h:
        Uniform knot spacing (must be positive).
    y:
        Knot values, length >= 2.
    extrapolate_low:
        Behaviour below ``x0``: ``"linear"`` continues with the boundary
        slope (safe for close-approach pair potentials), ``"clamp"``
        evaluates at ``x0``, ``"error"`` raises.
    zero_above:
        If True (the default for cutoff potentials), evaluation above the
        last knot returns exactly 0 for both value and derivative.
        Otherwise the boundary value is clamped.
    """

    def __init__(
        self,
        x0: float,
        h: float,
        y: np.ndarray,
        *,
        extrapolate_low: str = "linear",
        zero_above: bool = True,
    ) -> None:
        if h <= 0:
            raise ValueError(f"knot spacing must be positive, got {h}")
        if extrapolate_low not in ("linear", "clamp", "error"):
            raise ValueError(f"unknown extrapolate_low: {extrapolate_low!r}")
        y = np.asarray(y, dtype=np.float64)
        if y.ndim != 1 or len(y) < 2:
            raise ValueError("y must be a 1-D array with at least 2 knots")
        self.x0 = float(x0)
        self.h = float(h)
        self.y = y
        self.n = len(y)
        self.extrapolate_low = extrapolate_low
        self.zero_above = zero_above
        m = natural_cubic_second_derivatives(y, self.h)
        # Per-segment polynomial coefficients in the local variable
        # t = (x - x_k),   s(t) = c0 + c1 t + c2 t^2 + c3 t^3,
        # packed row-contiguous so evaluation is one gather per point
        # (the layout a WSE tile would hold per spline segment).
        hh = self.h
        self.coeffs = np.empty((self.n - 1, 4), dtype=np.float64)
        self.coeffs[:, 0] = y[:-1]
        self.coeffs[:, 1] = (
            (y[1:] - y[:-1]) / hh - hh * (2.0 * m[:-1] + m[1:]) / 6.0
        )
        self.coeffs[:, 2] = m[:-1] / 2.0
        self.coeffs[:, 3] = (m[1:] - m[:-1]) / (6.0 * hh)

    @property
    def x_max(self) -> float:
        """Position of the last knot."""
        return self.x0 + (self.n - 1) * self.h

    def knots(self) -> np.ndarray:
        """Knot abscissae as an array."""
        return self.x0 + self.h * np.arange(self.n)

    def segment(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Segment index and local offset for each ``x`` (paper Table III).

        Indices are clipped into the valid segment range; out-of-range
        handling is applied by :meth:`evaluate`.
        """
        x = np.asarray(x, dtype=np.float64)
        t = (x - self.x0) / self.h
        k = np.clip(np.floor(t).astype(np.int64), 0, self.n - 2)
        dx = x - (self.x0 + k * self.h)
        return k, dx

    def evaluate(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Value and first derivative at ``x`` (both arrays, vectorized)."""
        x = np.asarray(x, dtype=np.float64)
        scalar = x.ndim == 0
        x = np.atleast_1d(x)
        if self.extrapolate_low == "error" and np.any(x < self.x0):
            bad = float(np.min(x))
            raise ValueError(f"evaluation below first knot: {bad} < {self.x0}")
        k, dx = self.segment(x)
        if self.extrapolate_low == "clamp":
            dx = np.where(x < self.x0, 0.0, dx)
        metrics().counter("kernels.spline_eval.calls").inc()
        val, der = active_backend().spline_eval(self.coeffs, k, dx)
        if self.zero_above:
            above = x >= self.x_max
            val = np.where(above, 0.0, val)
            der = np.where(above, 0.0, der)
        else:
            above = x > self.x_max
            if np.any(above):
                val = np.where(above, self.y[-1], val)
                der = np.where(above, 0.0, der)
        if scalar:
            return val[0], der[0]
        return val, der

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Value only (convenience wrapper around :meth:`evaluate`)."""
        return self.evaluate(x)[0]

    def derivative(self, x: np.ndarray) -> np.ndarray:
        """First derivative only."""
        return self.evaluate(x)[1]

    @classmethod
    def from_function(
        cls,
        fn,
        x0: float,
        x1: float,
        n: int,
        **kwargs,
    ) -> "UniformCubicSpline":
        """Sample ``fn`` on ``n`` uniform knots over ``[x0, x1]``."""
        if n < 2:
            raise ValueError(f"need at least 2 knots, got {n}")
        if x1 <= x0:
            raise ValueError(f"empty interval [{x0}, {x1}]")
        xs = np.linspace(x0, x1, n)
        ys = np.asarray([fn(float(x)) for x in xs], dtype=np.float64)
        return cls(x0, (x1 - x0) / (n - 1), ys, **kwargs)

    def group_with(self, *others: "UniformCubicSpline") -> "SplineGroup":
        """Pack this spline with ``others`` into one :class:`SplineGroup`."""
        return SplineGroup([self, *others])

    def nbytes(self, dtype_size: int = 4) -> int:
        """SRAM footprint of the table at a given element size.

        The WSE stores tables in FP32; with 4 coefficient arrays this is
        what a tile must budget out of its 48 kB (see
        :mod:`repro.wse.tile`).
        """
        return 4 * (self.n - 1) * dtype_size


class SplineGroup:
    """Several uniform-knot splines fused into one coefficient bank.

    The lockstep machine's streaming passes evaluate every candidate of
    a whole offset chunk in one batch; with more than one atom type the
    points of that batch hit *different* splines (per source type, per
    type pair).  Rather than looping splines and masking, the group
    concatenates the member tables into a single packed ``(sum nseg, 4)``
    bank and maps each point's member index to a row offset, so one
    fused :func:`~repro.kernels` ``spline_eval`` gather serves the whole
    batch — exactly the per-point arithmetic of
    :meth:`UniformCubicSpline.evaluate`, so results are bitwise
    identical to the per-spline loops it replaces.

    All members must share ``extrapolate_low`` and ``zero_above`` (true
    for every EAM table family: all ``rho``, all ``phi``, all ``F`` of
    one potential are built with one flag set).
    """

    def __init__(self, splines: list[UniformCubicSpline]) -> None:
        if not splines:
            raise ValueError("SplineGroup needs at least one member spline")
        low = {s.extrapolate_low for s in splines}
        above = {s.zero_above for s in splines}
        if len(low) > 1 or len(above) > 1:
            raise ValueError(
                "grouped splines must share boundary handling, got "
                f"extrapolate_low={sorted(low)}, zero_above={sorted(above)}"
            )
        self.members = list(splines)
        self.extrapolate_low = splines[0].extrapolate_low
        self.zero_above = splines[0].zero_above
        self._x0 = np.array([s.x0 for s in splines], dtype=np.float64)
        self._h = np.array([s.h for s in splines], dtype=np.float64)
        self._nseg = np.array([s.n - 1 for s in splines], dtype=np.int64)
        self._x_max = np.array([s.x_max for s in splines], dtype=np.float64)
        self._y_last = np.array([s.y[-1] for s in splines], dtype=np.float64)
        self._row0 = np.concatenate(
            ([0], np.cumsum(self._nseg)[:-1])
        ).astype(np.int64)
        self.coeffs = np.ascontiguousarray(
            np.concatenate([s.coeffs for s in splines], axis=0)
        )
        self._bank: tuple | None = None

    @property
    def n_members(self) -> int:
        return len(self.members)

    def bank(self) -> tuple:
        """The packed coefficient bank as a kernel-ready tuple.

        This is the argument the :mod:`repro.kernels`
        ``grouped_spline_eval`` / ``fused_density_pass`` /
        ``fused_force_pass`` kernels take: ``(coeffs, row0, x0, h,
        nseg, x_max, y_last, clamp_low, zero_above)``, all per-member
        arrays C-contiguous.  Built once and cached — compiled backends
        key their dispatch on these exact array objects.
        """
        cached = self._bank
        if cached is None:
            cached = (
                self.coeffs,
                self._row0,
                self._x0,
                self._h,
                self._nseg,
                self._x_max,
                self._y_last,
                self.extrapolate_low == "clamp",
                self.zero_above,
            )
            self._bank = cached
        return cached

    def evaluate(
        self, x: np.ndarray, member: np.ndarray | int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Value and derivative at ``x``, point ``p`` using spline
        ``member[p]``.

        ``member`` broadcasts against ``x`` (a scalar evaluates the
        whole batch through one member).  Per point the arithmetic is
        identical to the member's own :meth:`UniformCubicSpline.evaluate`
        — the batch dispatches to the active backend's
        ``grouped_spline_eval`` whole-pass kernel.
        """
        x = np.asarray(x, dtype=np.float64)
        g = np.asarray(member, dtype=np.int64)
        if self.extrapolate_low == "error" and np.any(x < self._x0[g]):
            bad = float(np.min(x - self._x0[g]))
            raise ValueError(f"evaluation below first knot by {-bad}")
        metrics().counter("kernels.spline_eval.calls").inc()
        return active_backend().grouped_spline_eval(self.bank(), x, g)
