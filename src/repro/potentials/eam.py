"""Tabulated Embedded Atom Method potential (paper Sec. II-A).

The potential energy is (Eq. 3)

    U = sum_{i<j} phi_ij(r_ij)  +  sum_i F_i(rho_bar_i),
    rho_bar_i = sum_{j != i} rho_j(r_ij),

with all of ``rho``, ``F`` and ``phi`` stored as spline tables.  Forces
follow Eq. 4: the radial scalar for a pair is

    s_ij = F'(rho_bar_i) rho'_j(r) + F'(rho_bar_j) rho'_i(r) + phi'_ij(r).

The evaluation is deliberately split into three stages —
:meth:`EAMPotential.accumulate_density`, :meth:`EAMPotential.embed`, and
:meth:`EAMPotential.pair_energy_forces` — because the WSE timestep
communicates between exactly those stages (candidate exchange, then
embedding-derivative exchange, then force evaluation).  The reference MD
engine simply composes all three in :meth:`EAMPotential.compute`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels import active_backend
from repro.obs import NULL_TRACER, metrics
from repro.potentials.base import PairDistanceCap, PairTable, Potential
from repro.potentials.spline import SplineGroup, UniformCubicSpline

__all__ = ["EAMTables", "GroupedEAMTables", "EAMPotential"]

#: Placeholder type arrays for single-type fused passes: the kernels
#: never read per-pair types when the rho bank has one member.
_EMPTY_TYPES = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class GroupedEAMTables:
    """Batched-evaluation view of an :class:`EAMTables` (see
    :meth:`EAMTables.grouped`).

    ``phi_index[t1, t2]`` maps an ordered type pair to its member slot
    in the ``phi`` group, honoring the unordered ``(t1 <= t2)`` keying
    of the underlying tables.
    """

    rho: SplineGroup
    embed: SplineGroup
    phi: SplineGroup
    phi_index: np.ndarray


@dataclass
class EAMTables:
    """Spline tables for one or more atom types.

    Attributes
    ----------
    rho:
        Electron-density splines, one per atom type.
    embed:
        Embedding-energy splines ``F(rho_bar)``, one per atom type.
    phi:
        Pair-potential splines keyed by unordered type pair (t1 <= t2).
    cutoff:
        Interaction cutoff radius (A); all ``rho``/``phi`` tables vanish
        at and beyond it.
    meta:
        Free-form provenance (element symbols, construction parameters).
    """

    rho: list[UniformCubicSpline]
    embed: list[UniformCubicSpline]
    phi: dict[tuple[int, int], UniformCubicSpline]
    cutoff: float
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        nt = len(self.rho)
        if len(self.embed) != nt:
            raise ValueError(
                f"{nt} density tables but {len(self.embed)} embedding tables"
            )
        for t1 in range(nt):
            for t2 in range(t1, nt):
                if (t1, t2) not in self.phi:
                    raise ValueError(f"missing phi table for type pair {(t1, t2)}")
        if self.cutoff <= 0:
            raise ValueError(f"cutoff must be positive, got {self.cutoff}")
        # Fused-kernel contract: every spline holds its per-segment cubic
        # coefficients packed row-contiguous, one gather per evaluation.
        for spline in (*self.rho, *self.embed, *self.phi.values()):
            if not spline.coeffs.flags["C_CONTIGUOUS"]:
                spline.coeffs = np.ascontiguousarray(spline.coeffs)

    @property
    def n_types(self) -> int:
        """Number of atom types covered by the tables."""
        return len(self.rho)

    def phi_for(self, t1: int, t2: int) -> UniformCubicSpline:
        """Pair table for an (unordered) type pair."""
        return self.phi[(t1, t2) if t1 <= t2 else (t2, t1)]

    def grouped(self) -> GroupedEAMTables:
        """Fused :class:`~repro.potentials.spline.SplineGroup` banks.

        Built once and cached: the streaming lockstep passes evaluate
        whole offset chunks in one batch per table family instead of
        looping types, with bitwise-identical per-point results.
        """
        cached = getattr(self, "_grouped", None)
        if cached is not None:
            return cached
        nt = self.n_types
        phi_keys = sorted(self.phi)
        phi_index = np.empty((nt, nt), dtype=np.int64)
        for slot, (t1, t2) in enumerate(phi_keys):
            phi_index[t1, t2] = slot
            phi_index[t2, t1] = slot
        grouped = GroupedEAMTables(
            rho=SplineGroup(self.rho),
            embed=SplineGroup(self.embed),
            phi=SplineGroup([self.phi[key] for key in phi_keys]),
            phi_index=phi_index,
        )
        self._grouped = grouped
        return grouped

    def sram_bytes(self, dtype_size: int = 4) -> int:
        """Total table footprint a WSE tile would hold (paper Sec. III-A)."""
        total = sum(s.nbytes(dtype_size) for s in self.rho)
        total += sum(s.nbytes(dtype_size) for s in self.embed)
        total += sum(s.nbytes(dtype_size) for s in self.phi.values())
        return total


class EAMPotential(Potential):
    """EAM potential evaluated from :class:`EAMTables`."""

    supports_tracer = True

    def __init__(self, tables: EAMTables, cap: PairDistanceCap | None = None) -> None:
        self.tables = tables
        self.cap = cap or PairDistanceCap()
        #: validated types arrays (by identity) — callers pass the same
        #: persistent arrays every step (one per shard), so the range
        #: checks run once per array, not once per kernel call
        self._types_seen: dict[int, np.ndarray] = {}

    @property
    def cutoff(self) -> float:
        return self.tables.cutoff

    # -- stage 1: density accumulation ------------------------------------

    def accumulate_density(
        self, n_atoms: int, pairs: PairTable, types: np.ndarray | None = None
    ) -> np.ndarray:
        """Electron density ``rho_bar_i`` at every atom (Eq. 2)."""
        types = self._types(n_atoms, types)
        self.cap.check(pairs.r)
        rho_bar = np.zeros(n_atoms, dtype=np.float64)
        for tj in range(self.tables.n_types):
            mask = types[pairs.j] == tj
            if not np.any(mask):
                continue
            contrib = self.tables.rho[tj](pairs.r[mask])
            rho_bar += np.bincount(
                pairs.i[mask], weights=contrib, minlength=n_atoms
            )
        if pairs.half:
            # each stored pair also donates the i atom's density to j

            for ti in range(self.tables.n_types):
                mask = types[pairs.i] == ti
                if not np.any(mask):
                    continue
                contrib = self.tables.rho[ti](pairs.r[mask])
                rho_bar += np.bincount(
                    pairs.j[mask], weights=contrib, minlength=n_atoms
                )
        return rho_bar

    # -- stage 2: embedding -------------------------------------------------

    def embed(
        self, rho_bar: np.ndarray, types: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Embedding energy ``F_i`` and derivative ``F'_i`` per atom.

        One grouped-bank batch through the active backend: each atom
        evaluates its own type's ``F`` spline, with per-point arithmetic
        identical to the per-type masked loops this replaces.
        """
        n_atoms = len(rho_bar)
        types = self._types(n_atoms, types)
        grouped = self.tables.grouped()
        member = 0 if self.tables.n_types == 1 else types
        return grouped.embed.evaluate(
            np.asarray(rho_bar, dtype=np.float64), member
        )

    # -- stage 3: pair energy and forces -----------------------------------

    def pair_energy_forces(
        self,
        n_atoms: int,
        pairs: PairTable,
        f_der: np.ndarray,
        types: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pair energies (N,) and total forces (N, 3) given ``F'`` per atom.

        For a full (directed) pair list each entry updates only atom
        ``i``; for a half list the opposite contribution is applied to
        ``j`` as well.
        """
        types = self._types(n_atoms, types)
        p = pairs.n_pairs
        e_pair = np.zeros(n_atoms, dtype=np.float64)
        forces = np.zeros((n_atoms, 3), dtype=np.float64)
        if p == 0:
            return e_pair, forces

        if self.tables.n_types == 1:
            # one fused pass: rho' and (phi, phi') each evaluated once
            _, rho_d = self.tables.rho[0].evaluate(pairs.r)
            rho_d_i = rho_d_j = rho_d
            phi_v, phi_d = self.tables.phi_for(0, 0).evaluate(pairs.r)
        else:
            phi_v = np.empty(p, dtype=np.float64)
            phi_d = np.empty(p, dtype=np.float64)
            rho_d_j = np.empty(p, dtype=np.float64)  # rho'_{type(j)}(r)
            rho_d_i = np.empty(p, dtype=np.float64)  # rho'_{type(i)}(r)
            ti_arr = types[pairs.i]
            tj_arr = types[pairs.j]
            for t1 in range(self.tables.n_types):
                m_i = ti_arr == t1
                m_j = tj_arr == t1
                m_any = m_i | m_j
                if np.any(m_any):
                    d_any = np.empty(p, dtype=np.float64)
                    _, d_any[m_any] = self.tables.rho[t1].evaluate(
                        pairs.r[m_any]
                    )
                    rho_d_i[m_i] = d_any[m_i]
                    rho_d_j[m_j] = d_any[m_j]
                for t2 in range(t1, self.tables.n_types):
                    m = (ti_arr == t1) & (tj_arr == t2)
                    if t1 != t2:
                        m |= (ti_arr == t2) & (tj_arr == t1)
                    if not np.any(m):
                        continue
                    v, d = self.tables.phi_for(t1, t2).evaluate(pairs.r[m])
                    phi_v[m] = v
                    phi_d[m] = d

        # Radial scalar of Eq. 4, per directed pair.
        s = f_der[pairs.i] * rho_d_j + f_der[pairs.j] * rho_d_i + phi_d
        with np.errstate(invalid="raise", divide="raise"):
            unit = pairs.rij / pairs.r[:, None]
        fvec = s[:, None] * unit  # force on atom i, along r_j - r_i direction

        for axis in range(3):
            forces[:, axis] += np.bincount(
                pairs.i, weights=fvec[:, axis], minlength=n_atoms
            )
        if pairs.half:
            for axis in range(3):
                forces[:, axis] -= np.bincount(
                    pairs.j, weights=fvec[:, axis], minlength=n_atoms
                )
            e_pair += 0.5 * np.bincount(pairs.i, weights=phi_v, minlength=n_atoms)
            e_pair += 0.5 * np.bincount(pairs.j, weights=phi_v, minlength=n_atoms)
        else:
            e_pair += 0.5 * np.bincount(pairs.i, weights=phi_v, minlength=n_atoms)
        return e_pair, forces

    # -- composed evaluation --------------------------------------------------

    def compute(
        self,
        n_atoms: int,
        pairs: PairTable,
        types: np.ndarray | None = None,
        *,
        tracer=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-atom energies and forces.

        Half pair tables take the fused fast path: per stored pair, one
        spline pass yields rho value *and* derivative, one yields phi
        value and derivative, and every scatter feeds both atoms — four
        table evaluations per undirected pair in the seed become two
        per half pair.  Directed tables compose the three staged
        methods unchanged (the oracle path).

        When a ``tracer`` is given, the stages are emitted as the
        taxonomy's ``density`` / ``embedding`` / ``pair_force`` spans.
        """
        tr = tracer if tracer is not None else NULL_TRACER
        types = self._types(n_atoms, types)
        if pairs.half:
            return self._compute_half_fused(n_atoms, pairs, types, tr)
        with tr.phase("density", pairs=pairs.n_pairs):
            rho_bar = self.accumulate_density(n_atoms, pairs, types)
        with tr.phase("embedding"):
            f_val, f_der = self.embed(rho_bar, types)
        with tr.phase("pair_force"):
            e_pair, forces = self.pair_energy_forces(
                n_atoms, pairs, f_der, types
            )
        return e_pair + f_val, forces

    # -- fused half-pair stages --------------------------------------------
    #
    # The fused path is split into two standalone stages so the
    # domain-sharded pipeline (:mod:`repro.parallel`) can run each stage
    # per shard with a global reduction between them (rho_bar must be
    # complete before the embedding derivative feeds the force stage).
    # The serial fast path composes the same two stages, so parallel and
    # serial runs share one numeric implementation and differ only in
    # summation order.

    def fused_density(
        self, n_atoms: int, pairs: PairTable, types: np.ndarray | None = None
    ) -> tuple[np.ndarray, dict]:
        """Stage 1 of the fused half-pair path: partial ``rho_bar``.

        Returns the density contribution of *these* pairs (a full
        ``(n_atoms,)`` array — zero where no pair touches an atom) and a
        cache of per-pair density derivatives for
        :meth:`fused_pair_force`.

        The whole stage is one ``fused_density_pass`` kernel call:
        spline lookups and both scatter halves run inside the active
        backend (a single compiled loop under numba).  Single-type
        tables evaluate the rho spline once per pair and share the
        value between directions, so the per-pair type gathers are
        skipped too.
        """
        types = self._types(n_atoms, types)
        self.cap.check(pairs.r)
        backend = active_backend()
        p = pairs.n_pairs
        if p == 0:
            return np.zeros(n_atoms, dtype=np.float64), {}
        i, j = pairs.i, pairs.j
        if self.tables.n_types == 1:
            ti = tj = _EMPTY_TYPES  # ignored by single-member banks
        else:
            ti = types[i]
            tj = types[j]
        rho_bar, rho_ji_d, rho_ij_d = backend.fused_density_pass(
            i, j, pairs.r, ti, tj,
            self.tables.grouped().rho.bank(), n_atoms,
        )
        metrics().counter("kernels.fused_density_pass.calls").inc()
        return rho_bar, {"rho_ji_d": rho_ji_d, "rho_ij_d": rho_ij_d}

    def fused_pair_force(
        self,
        n_atoms: int,
        pairs: PairTable,
        f_der: np.ndarray,
        types: np.ndarray | None = None,
        *,
        cache: dict,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stage 2 of the fused half-pair path: pair energies and forces.

        ``f_der`` is the *globally reduced* embedding derivative
        ``F'(rho_bar)`` per atom; ``cache`` comes from
        :meth:`fused_density` over the same pair table.

        The stage is one ``fused_force_pass`` kernel call: the phi
        spline lookup, the Eq. 4 radial scalar, the unit-vector
        projection and all four scatter halves run inside the active
        backend (a single compiled loop under numba).
        """
        types = self._types(n_atoms, types)
        p = pairs.n_pairs
        if p == 0:
            return (
                np.zeros(n_atoms, dtype=np.float64),
                np.zeros((n_atoms, 3), dtype=np.float64),
            )
        backend = active_backend()
        grouped = self.tables.grouped()
        i, j = pairs.i, pairs.j
        if self.tables.n_types == 1:
            member = 0
        else:
            member = grouped.phi_index[types[i], types[j]]
        e_pair, forces = backend.fused_force_pass(
            i, j, pairs.rij, pairs.r, f_der,
            cache["rho_ji_d"], cache["rho_ij_d"],
            grouped.phi.bank(), member, n_atoms,
        )
        metrics().counter("kernels.fused_force_pass.calls").inc()
        return e_pair, forces

    def _compute_half_fused(
        self,
        n_atoms: int,
        pairs: PairTable,
        types: np.ndarray,
        tr=NULL_TRACER,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Fused EAM evaluation over a half pair list."""
        with tr.phase("density", pairs=pairs.n_pairs):
            rho_bar, cache = self.fused_density(n_atoms, pairs, types)
        with tr.phase("embedding"):
            f_val, f_der = self.embed(rho_bar, types)
        with tr.phase("pair_force"):
            e_pair, forces = self.fused_pair_force(
                n_atoms, pairs, f_der, types, cache=cache
            )
        return e_pair + f_val, forces

    def _types(self, n_atoms: int, types: np.ndarray | None) -> np.ndarray:
        if types is None:
            return np.zeros(n_atoms, dtype=np.int64)
        types = np.asarray(types)
        if (
            self._types_seen.get(id(types)) is types
            and len(types) == n_atoms
        ):
            return types
        if len(types) != n_atoms:
            raise ValueError(f"types length {len(types)} != n_atoms {n_atoms}")
        if np.any(types < 0) or np.any(types >= self.tables.n_types):
            raise ValueError(
                f"type out of range [0, {self.tables.n_types}): "
                f"{np.unique(types)}"
            )
        if len(self._types_seen) > 16:
            self._types_seen.clear()
        self._types_seen[id(types)] = types
        return types
