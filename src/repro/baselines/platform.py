"""Static platform descriptions for the baseline machines (Sec. IV-B).

Frontier: 9,408 nodes, each with 8 MI250X graphics compute dies (GCDs)
and one 64-core EPYC, Slingshot-11 network — the first exascale system.
Quartz: 2.1 GHz dual-socket Intel Xeon E5-2695 v4 (Broadwell, 18 cores
per socket) on Omni-Path.

Peak FLOP rates follow the paper's Table IV accounting (0.77 PFLOP/s
for 32 GCDs; 0.50 PFLOP/s for 800 CPUs), i.e. ~24 TFLOP/s FP64 per GCD
and ~0.6 TFLOP/s per Broadwell socket.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PlatformSpec", "FRONTIER", "QUARTZ"]


@dataclass(frozen=True)
class PlatformSpec:
    """One cluster platform.

    ``unit`` is the granularity of the strong-scaling sweep (GCD for
    Frontier, CPU socket for Quartz); power numbers are per engaged
    unit, including its share of node infrastructure.
    """

    name: str
    unit: str
    units_per_node: int
    peak_flops_per_unit: float
    power_per_unit_watts: float
    max_units: int

    def peak_flops(self, units: int) -> float:
        """Aggregate peak over ``units`` engaged units."""
        self._check(units)
        return self.peak_flops_per_unit * units

    def power(self, units: int) -> float:
        """System power (W) with ``units`` engaged."""
        self._check(units)
        return self.power_per_unit_watts * units

    def _check(self, units: int) -> None:
        if units < 1 or units > self.max_units:
            raise ValueError(
                f"{self.name}: units must be in [1, {self.max_units}], "
                f"got {units}"
            )


FRONTIER = PlatformSpec(
    name="Frontier",
    unit="GCD",
    units_per_node=8,
    peak_flops_per_unit=0.77e15 / 32,  # Table IV: 32 GCDs = 0.77 PFLOP/s
    power_per_unit_watts=430.0,  # GCD + share of node infrastructure
    max_units=9408 * 8,
)

QUARTZ = PlatformSpec(
    name="Quartz",
    unit="CPU socket",
    units_per_node=2,
    peak_flops_per_unit=0.50e15 / 800,  # Table IV: 800 CPUs = 0.50 PFLOP/s
    power_per_unit_watts=175.0,  # half of a ~350 W dual-socket node
    max_units=6000,
)
