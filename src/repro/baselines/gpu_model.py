"""LAMMPS-on-GPU strong-scaling rate model (Frontier baseline).

The paper attributes the GPU strong-scaling ceiling to kernel-launch
overhead and coarse parallel granularity (Sec. V-A: "GPUs scale poorly
for systems of this size... likely due to overheads for kernel launch"),
plus growing MPI cost as GCD count rises.  The step-time model:

    t(n_gcd) = max(launch_floor, c_atom * N / n_gcd) + mpi_log * log2(n_gcd / 8)

* ``c_atom`` — per-atom-step compute time of one GCD (FP64 EAM).
* ``launch_floor`` — the per-step kernel-launch + host-driver floor a
  GCD cannot go below regardless of how few atoms it holds.
* ``mpi_log`` — inter-node halo/allreduce growth once the job spans
  multiple nodes (8 GCDs per node).

Constants per element are calibrated so the best rate over the sweep
matches the paper's Table I anchors (Cu 973, W 998, Ta 1,530 steps/s at
801,792 atoms, best near 32 GCDs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GpuStrongScalingModel", "FRONTIER_MODELS", "V100_LJ_MODEL"]


@dataclass(frozen=True)
class GpuStrongScalingModel:
    """Strong-scaling step-time model for one workload on a GPU cluster."""

    element: str
    c_atom_s: float          # seconds per atom-step per GCD
    launch_floor_s: float    # kernel-launch floor per step
    mpi_log_s: float         # per-doubling MPI cost beyond one node
    gcds_per_node: int = 8

    def __post_init__(self) -> None:
        if min(self.c_atom_s, self.launch_floor_s) <= 0 or self.mpi_log_s < 0:
            raise ValueError(f"{self.element}: non-positive model constants")

    def step_time(self, n_atoms: int, n_gcd: int) -> float:
        """Seconds per timestep on ``n_gcd`` GCDs."""
        if n_atoms < 1 or n_gcd < 1:
            raise ValueError(f"atoms/GCDs must be >= 1: {n_atoms}, {n_gcd}")
        compute = self.c_atom_s * n_atoms / n_gcd
        mpi = 0.0
        if n_gcd > self.gcds_per_node:
            mpi = self.mpi_log_s * math.log2(n_gcd / self.gcds_per_node)
        return max(self.launch_floor_s, compute) + mpi

    def rate(self, n_atoms: int, n_gcd: int) -> float:
        """Timesteps per second."""
        return 1.0 / self.step_time(n_atoms, n_gcd)

    def best_rate(self, n_atoms: int, max_gcd: int = 4096) -> tuple[float, int]:
        """(best rate, GCD count) over power-of-two sweeps."""
        best = (0.0, 1)
        n = 1
        while n <= max_gcd:
            r = self.rate(n_atoms, n)
            if r > best[0]:
                best = (r, n)
            n *= 2
        return best


#: Calibrated to Table I (801,792 atoms): per-GCD throughput follows the
#: per-atom neighbor work (Ta 14 interactions is far cheaper than Cu 42
#: or W 59), floors follow LAMMPS kernel counts per step.
FRONTIER_MODELS: dict[str, GpuStrongScalingModel] = {
    "Cu": GpuStrongScalingModel(
        element="Cu", c_atom_s=1.0 / 26.0e6, launch_floor_s=9.6e-4,
        mpi_log_s=3.0e-5,
    ),
    "W": GpuStrongScalingModel(
        element="W", c_atom_s=1.0 / 26.7e6, launch_floor_s=9.4e-4,
        mpi_log_s=3.0e-5,
    ),
    "Ta": GpuStrongScalingModel(
        element="Ta", c_atom_s=1.0 / 46.0e6, launch_floor_s=5.9e-4,
        mpi_log_s=3.0e-5,
    ),
}

#: The Sec. II-B small-system anchor: 1k-atom Lennard-Jones on a V100
#: peaks below 10k steps/s — pure kernel-launch bound.
V100_LJ_MODEL = GpuStrongScalingModel(
    element="LJ", c_atom_s=1.0 / 80.0e6, launch_floor_s=1.05e-4,
    mpi_log_s=0.0, gcds_per_node=1,
)
