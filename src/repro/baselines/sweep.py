"""Strong-scaling sweeps over unit counts (Fig. 7 data generator)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cpu_model import CpuStrongScalingModel
from repro.baselines.gpu_model import GpuStrongScalingModel
from repro.baselines.platform import PlatformSpec

__all__ = ["ScalingPoint", "sweep_gpu", "sweep_cpu", "powers_of_two"]


@dataclass(frozen=True)
class ScalingPoint:
    """One configuration of a strong-scaling sweep."""

    machine: str
    element: str
    units: int
    rate_steps_per_s: float
    power_watts: float

    @property
    def steps_per_joule(self) -> float:
        """Energy efficiency at this configuration."""
        return self.rate_steps_per_s / self.power_watts


def powers_of_two(lo: int, hi: int) -> list[int]:
    """Powers of two in [lo, hi]."""
    if lo < 1 or hi < lo:
        raise ValueError(f"bad range [{lo}, {hi}]")
    out = []
    n = 1
    while n <= hi:
        if n >= lo:
            out.append(n)
        n *= 2
    return out


def sweep_gpu(
    model: GpuStrongScalingModel,
    platform: PlatformSpec,
    n_atoms: int,
    unit_counts: list[int] | None = None,
) -> list[ScalingPoint]:
    """Rate and power across GCD counts."""
    unit_counts = unit_counts or powers_of_two(1, 2048)
    return [
        ScalingPoint(
            machine=platform.name,
            element=model.element,
            units=n,
            rate_steps_per_s=model.rate(n_atoms, n),
            power_watts=platform.power(n),
        )
        for n in unit_counts
    ]


def sweep_cpu(
    model: CpuStrongScalingModel,
    platform: PlatformSpec,
    n_atoms: int,
    node_counts: list[int] | None = None,
) -> list[ScalingPoint]:
    """Rate and power across node counts (all sockets engaged)."""
    node_counts = node_counts or powers_of_two(1, 2048)
    return [
        ScalingPoint(
            machine=platform.name,
            element=model.element,
            units=n * 2,  # sockets engaged (power accounting unit)
            rate_steps_per_s=model.rate_for_nodes(n_atoms, n),
            power_watts=platform.power(n * 2),
        )
        for n in node_counts
    ]
