"""Baseline platform models: LAMMPS on Frontier (GPU) and Quartz (CPU).

The paper's Fig. 7 compares the WSE against LAMMPS strong-scaling sweeps
on the two fastest conventional platforms available.  We model those
sweeps with the mechanisms the paper identifies — kernel-launch floors
and coarse parallel granularity on GPUs, MPI latency on CPUs — with
per-element constants calibrated to the published best rates (Table I
anchors).  See DESIGN.md, "Substitutions".
"""

from repro.baselines.platform import PlatformSpec, FRONTIER, QUARTZ
from repro.baselines.gpu_model import GpuStrongScalingModel, FRONTIER_MODELS
from repro.baselines.cpu_model import CpuStrongScalingModel, QUARTZ_MODELS
from repro.baselines.sweep import ScalingPoint, sweep_gpu, sweep_cpu

__all__ = [
    "PlatformSpec",
    "FRONTIER",
    "QUARTZ",
    "GpuStrongScalingModel",
    "FRONTIER_MODELS",
    "CpuStrongScalingModel",
    "QUARTZ_MODELS",
    "ScalingPoint",
    "sweep_gpu",
    "sweep_cpu",
]
