"""LAMMPS-on-CPU strong-scaling rate model (Quartz baseline).

CPUs tolerate finer granularity than GPUs (Sec. V-A: scaling stalls at
400 dual-socket nodes, ~1,000 atoms per socket, with MPI communication
the likely limiter).  Step-time model per MPI-rank count:

    t(n_ranks) = c_atom * N / n_ranks
               + mpi_log * log2(n_ranks)
               + mpi_linear * n_ranks
               + mpi_floor

* ``c_atom`` — per-atom-step time of one core-equivalent rank.
* ``mpi_log`` — collective/halo cost growth with rank count.
* ``mpi_linear`` — synchronization/imbalance cost growing with ranks
  (what finally turns the curve over past the stall point).
* ``mpi_floor`` — fixed per-step communication/integration floor.

Calibrated so the best rate matches Table I (Cu 3,120, W 3,633,
Ta 4,938 steps/s for 801,792 atoms) near the paper's 400-node stall
point (36 ranks per dual-socket Broadwell node).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CpuStrongScalingModel", "QUARTZ_MODELS", "SKYLAKE_LJ_MODEL"]


@dataclass(frozen=True)
class CpuStrongScalingModel:
    """Strong-scaling step-time model for one workload on a CPU cluster."""

    element: str
    c_atom_s: float        # seconds per atom-step per rank
    mpi_log_s: float       # per-doubling MPI growth
    mpi_floor_s: float     # fixed per-step floor
    mpi_linear_s: float = 0.0  # per-rank growth
    ranks_per_node: int = 36

    def __post_init__(self) -> None:
        if self.c_atom_s <= 0 or self.mpi_log_s < 0 or self.mpi_floor_s < 0:
            raise ValueError(f"{self.element}: invalid model constants")

    def step_time(self, n_atoms: int, n_ranks: int) -> float:
        """Seconds per timestep on ``n_ranks`` MPI ranks."""
        if n_atoms < 1 or n_ranks < 1:
            raise ValueError(f"atoms/ranks must be >= 1: {n_atoms}, {n_ranks}")
        compute = self.c_atom_s * n_atoms / n_ranks
        mpi = self.mpi_log_s * math.log2(n_ranks) if n_ranks > 1 else 0.0
        mpi += self.mpi_linear_s * n_ranks
        return compute + mpi + self.mpi_floor_s

    def rate(self, n_atoms: int, n_ranks: int) -> float:
        """Timesteps per second."""
        return 1.0 / self.step_time(n_atoms, n_ranks)

    def rate_for_nodes(self, n_atoms: int, n_nodes: int) -> float:
        """Timesteps per second using all ranks of ``n_nodes`` nodes."""
        return self.rate(n_atoms, n_nodes * self.ranks_per_node)

    def best_rate(
        self, n_atoms: int, max_nodes: int = 3000
    ) -> tuple[float, int]:
        """(best rate, node count) over power-of-two node sweeps."""
        best = (0.0, 1)
        n = 1
        while n <= max_nodes:
            r = self.rate_for_nodes(n_atoms, n)
            if r > best[0]:
                best = (r, n)
            n *= 2
        return best


#: Calibrated to Table I anchors with the stall near 400 nodes.
QUARTZ_MODELS: dict[str, CpuStrongScalingModel] = {
    "Cu": CpuStrongScalingModel(
        element="Cu", c_atom_s=1.924e-6, mpi_log_s=7.0e-6,
        mpi_floor_s=3.0e-5, mpi_linear_s=6.03e-9,
    ),
    "W": CpuStrongScalingModel(
        element="W", c_atom_s=1.476e-6, mpi_log_s=7.0e-6,
        mpi_floor_s=3.0e-5, mpi_linear_s=4.62e-9,
    ),
    "Ta": CpuStrongScalingModel(
        element="Ta", c_atom_s=7.53e-7, mpi_log_s=7.0e-6,
        mpi_floor_s=3.0e-5, mpi_linear_s=2.36e-9,
    ),
}

#: Sec. II-B anchor: 1k-atom LJ on a dual-socket Skylake (36 ranks)
#: reaches ~25k steps/s.
SKYLAKE_LJ_MODEL = CpuStrongScalingModel(
    element="LJ", c_atom_s=1.0 / 2.5e6, mpi_log_s=5.0e-6,
    mpi_floor_s=1.0e-5,
)
