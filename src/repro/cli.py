"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Machine configuration and benchmark-element summary.
``run``
    Run a thin-slab simulation through the unified runtime — from CLI
    flags or a declarative ``--spec`` TOML/JSON file — with optional
    checkpointing (``--checkpoint``) and resume (``--resume``).
``serve``
    Start the job server (:mod:`repro.serve`): a bounded pool of
    runner slots behind a JSON-lines TCP API, with an on-disk result
    cache keyed by ``(spec_hash, n_steps)`` — identical submissions
    return the stored telemetry, longer ones resume from the stored
    checkpoint.
``submit``
    Submit a run (or a ``--replicas``/``--sweep`` ensemble) to a
    running server and wait for — or ``--watch`` — the result.
``jobs``
    List a server's job table; ``--cancel``, ``--stats``,
    ``--shutdown``.
``validate``
    Run the same workload through both engines and report trajectory
    equivalence with a pass/fail exit code.
``table1`` / ``table5`` / ``table6`` / ``fig1``
    Print quick reproductions of the corresponding paper artifacts
    (the full harness lives in ``benchmarks/``).
``bench``
    Time both engines on the standard Ta/Cu/W workloads, append the run
    to ``BENCH_kernels.json``'s history, and optionally gate against a
    baseline report (see ``repro.bench``).
``profile``
    Run one workload under phase tracing on both engines: write a JSONL
    trace, print the per-phase summary tables, and (``--check``) verify
    the trace parses, every taxonomy phase appears, the phases cover
    >= 95 % of wall time, and the lockstep engine's traced cycles
    regress to the cycle model's (A, B, C) calibration targets.

Exit codes: 0 success, :data:`EXIT_RUN_FAILED` (1) for a run/validation
failure, :data:`EXIT_BAD_SPEC` (2) for a malformed or inconsistent spec
— including a ``--resume`` prefix whose checkpoint is missing, torn, or
physics-incompatible (the *request* is unusable, nothing was run).
"""

from __future__ import annotations

import argparse
import os
import sys

EXIT_OK = 0
EXIT_RUN_FAILED = 1
EXIT_BAD_SPEC = 2


def _cmd_info(args) -> int:
    from repro.potentials.elements import ELEMENTS
    from repro.wse.machine import WSE2
    from repro.io.table_io import Table

    print(f"{WSE2.name}: {WSE2.usable_cores:,} cores on a "
          f"{WSE2.grid_x}x{WSE2.grid_y} mesh, "
          f"{WSE2.sram_per_tile // 1024} kB SRAM/tile, "
          f"{WSE2.peak_flops_fp32 / 1e15:.2f} PFLOP/s FP32 "
          f"({WSE2.clock_hz / 1e6:.0f} MHz), {WSE2.power_watts / 1000:.0f} kW")
    table = Table(
        "benchmark elements (paper Table I workloads)",
        ["element", "structure", "a0 (A)", "cutoff (A)", "b",
         "candidates", "interactions", "atoms"],
    )
    for el in ELEMENTS.values():
        table.add_row(
            el.symbol, el.cell.name, el.lattice_constant,
            f"{el.cutoff:.2f}", el.neighborhood_b, el.candidates,
            el.interactions, el.n_atoms_table1,
        )
    table.print()
    return 0


def _parse_topology(value: str) -> tuple[int, int]:
    """argparse type for ``--topology PXxPY`` (e.g. ``2x2``)."""
    parts = value.lower().split("x")
    if len(parts) != 2 or not all(p.isdigit() for p in parts):
        raise argparse.ArgumentTypeError(
            f"expected PXxPY (e.g. 2x2), got {value!r}"
        )
    px, py = int(parts[0]), int(parts[1])
    if px < 1 or py < 1:
        raise argparse.ArgumentTypeError("topology factors must be >= 1")
    return px, py


def _set_backend(name: str | None) -> str:
    from repro.kernels import active_backend_name, set_backend

    if name:
        set_backend(name)
    return active_backend_name()


def _spec_from_run_args(args):
    """Resolve the run spec: ``--spec`` file, or the CLI flags.

    With a spec file, only ``--steps``, ``--backend`` and
    ``--checkpoint-interval`` override it when given explicitly; the
    workload flags (element, reps, engine, ...) come from the file.
    """
    from dataclasses import replace

    from repro.runtime import RunSpec

    if args.spec:
        spec = RunSpec.from_file(args.spec)
        overrides = {}
        if args.steps is not None:
            overrides["steps"] = args.steps
        if args.backend:
            overrides["backend"] = args.backend
        if args.workers is not None:
            overrides["workers"] = args.workers
        if args.topology is not None:
            overrides["topology"] = args.topology
        if args.transport is not None:
            overrides["transport"] = args.transport
        if args.fuse_integrate:
            overrides["fuse_integrate"] = True
        if args.offset_chunk is not None:
            overrides["offset_chunk"] = args.offset_chunk
        if args.checkpoint_interval is not None:
            overrides["checkpoint_interval"] = args.checkpoint_interval
        return replace(spec, **overrides) if overrides else spec
    return RunSpec(
        element=args.element,
        reps=tuple(args.reps),
        temperature=args.temperature,
        engine=args.engine,
        steps=args.steps if args.steps is not None else 100,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers or 0,
        topology=args.topology,
        transport=args.transport,
        fuse_integrate=args.fuse_integrate,
        offset_chunk=args.offset_chunk or 0,
        swap_interval=args.swap_interval,
        force_symmetry=args.force_symmetry,
        checkpoint_interval=args.checkpoint_interval or 0,
    )


def _report_run(runner, spec) -> int:
    from repro.kernels import active_backend_name

    engine = runner.engine
    start = engine.step_count
    if engine.name == "wse":
        sim = engine.sim
        print(f"{sim.n_atoms} {spec.element} atoms on "
              f"{sim.grid.nx}x{sim.grid.ny} cores, b={sim.b}, "
              f"C(g)={sim.assignment_cost():.2f} A")
        runner.run()
        n = engine.step_count - start
        out = engine.state
        if n > 0:
            cand, inter = sim.mean_counts()
            print(f"after {n} steps: T={out.temperature():.0f} K, "
                  f"mean work {cand:.0f} cand / {inter:.1f} int per atom")
            print(f"modeled WSE-2 rate: "
                  f"{sim.measured_rate():,.0f} timesteps/s")
        else:
            # resuming a run that already reached its target is a no-op
            print(f"after 0 steps: T={out.temperature():.0f} K "
                  f"(already at step {engine.step_count})")
        if spec.swap_interval:
            print(f"swaps performed: {sim.swap_count}")
    else:
        e0 = engine.total_energy()
        telemetry = runner.run()
        n = engine.step_count - start
        e1 = engine.total_energy()
        state = engine.state
        print(f"{state.n_atoms} {spec.element} atoms, reference engine "
              f"({active_backend_name()} kernels)")
        print(f"after {n} steps: T={state.temperature():.0f} K, "
              f"energy drift {abs(e1 - e0) / state.n_atoms:.2e} eV/atom")
        ph = telemetry.phase_seconds
        print(f"loop stats: {telemetry.steps_per_s:.2f} steps/s, "
              f"{telemetry.counters['neighbor_rebuilds']} rebuilds, "
              f"{telemetry.counters['pairs_per_step']:,.0f} pairs/step; "
              f"wall {telemetry.wall_time_s:.2f} s = "
              f"neighbor {ph['neighbor']:.2f} + "
              f"force {ph['force']:.2f} + "
              f"integrate {ph['integrate']:.2f}")
    if runner.checkpoint_prefix is not None:
        print(f"checkpoint written: {runner.checkpoint_prefix}")
    return EXIT_OK


def _cmd_run(args) -> int:
    from repro.runtime import CheckpointError, Runner, SpecError

    try:
        spec = _spec_from_run_args(args)
    except SpecError as exc:
        print(f"error: invalid run spec: {exc}", file=sys.stderr)
        return EXIT_BAD_SPEC
    try:
        if args.resume:
            runner = Runner.resume(
                spec, args.resume, checkpoint_prefix=args.checkpoint
            )
        else:
            runner = Runner.from_spec(
                spec, checkpoint_prefix=args.checkpoint
            )
    except CheckpointError as exc:
        # a missing/torn/mismatched --resume checkpoint means the
        # request itself is unusable — bad input (2), not a run
        # failure (1); nothing was computed
        print(f"error: cannot resume: {exc}", file=sys.stderr)
        return EXIT_BAD_SPEC
    except Exception as exc:
        print(f"error: run failed: {exc}", file=sys.stderr)
        return EXIT_RUN_FAILED
    try:
        try:
            return _report_run(runner, spec)
        finally:
            runner.close()
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_RUN_FAILED
    except Exception as exc:
        print(f"error: run failed: {exc}", file=sys.stderr)
        return EXIT_RUN_FAILED


def _cmd_serve(args) -> int:
    from repro.serve import run_server

    return run_server(
        args.host,
        args.port,
        slots=args.slots,
        cache_dir=args.cache_dir,
        cache_bytes=args.cache_bytes,
        progress_interval=args.progress_interval or 0,
    )


def _describe_served_job(job: dict, verbose: bool = True) -> None:
    line = (f"{job['id']}: {job['state']}  {job['element']} "
            f"{tuple(job['reps'])} x {job['steps']} steps "
            f"[{job['engine']}]")
    if job.get("cache"):
        line += f"  cache={job['cache']}"
    if job.get("resume_step"):
        line += f" (resumed at step {job['resume_step']})"
    if job.get("coalesced"):
        line += f"  coalesced={job['coalesced']}"
    if job.get("ensemble"):
        line += f"  ensemble={job['ensemble']}"
    print(line)
    if job.get("error"):
        print(f"  error: {job['error']}")
    if verbose:
        for entry in job.get("log") or []:
            print(f"  | {entry}")


def _cmd_submit(args) -> int:
    from repro.runtime import SpecError
    from repro.serve import ServeClient

    try:
        spec = _spec_from_run_args(args)
    except SpecError as exc:
        print(f"error: invalid run spec: {exc}", file=sys.stderr)
        return EXIT_BAD_SPEC
    sweep = None
    if args.sweep:
        name, _, values = args.sweep.partition("=")
        if not values:
            print("error: --sweep expects FIELD=V1,V2,...", file=sys.stderr)
            return EXIT_BAD_SPEC
        sweep = {name: [_parse_sweep_value(v) for v in values.split(",")]}
    client = ServeClient(args.host, args.port, timeout=args.timeout)

    def on_event(event) -> None:
        kind, payload = event["kind"], event["payload"]
        if kind == "progress":
            temp = payload.get("temperature")
            suffix = f"  T={temp:.0f} K" if temp is not None else ""
            print(f"{event['job_id']}: step {payload['step']}"
                  f"/{payload['of']}{suffix}")
        elif kind == "state":
            print(f"{event['job_id']}: -> {payload['state']}")
        elif kind == "log":
            print(f"{event['job_id']}: {payload['line']}")

    try:
        response = client.submit(
            spec.to_dict(),
            replicas=args.replicas,
            sweep=sweep,
            wait=not args.no_wait,
            watch=args.watch,
            on_event=on_event if args.watch else None,
        )
    except OSError as exc:
        print(f"error: cannot reach server at {args.host}:{args.port}: "
              f"{exc}", file=sys.stderr)
        return EXIT_RUN_FAILED
    if not response.get("ok"):
        print(f"error: {response.get('error')}", file=sys.stderr)
        return int(response.get("code") or EXIT_RUN_FAILED)
    failed = False
    for job in response["jobs"]:
        _describe_served_job(job, verbose=not args.watch)
        if job["state"] == "failed":
            failed = True
    return EXIT_RUN_FAILED if failed else EXIT_OK


def _parse_sweep_value(text: str):
    """Best-effort typing for --sweep values (int, float, or string)."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _cmd_jobs(args) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.cancel:
            response = client.cancel(args.cancel)
            print(f"{args.cancel}: "
                  f"{'cancelled' if response.get('cancelled') else 'not cancellable'}")
            return EXIT_OK
        if args.shutdown:
            client.shutdown()
            print("server stopping")
            return EXIT_OK
        if args.stats:
            stats = client.stats()["stats"]
            print(f"slots: {stats['slots']}, jobs: {stats['jobs']}, "
                  f"states: {stats['states']}")
            cache = stats.get("cache")
            if cache:
                print(f"cache: {cache['entries']} entries, "
                      f"{cache['bytes']:,} bytes "
                      f"(cap {cache['max_bytes']:,}); "
                      f"{cache['hits']} hits, {cache['misses']} misses, "
                      f"{cache['resumes']} resumes, "
                      f"{cache['evictions']} evictions")
            return EXIT_OK
        response = client.jobs()
    except OSError as exc:
        print(f"error: cannot reach server at {args.host}:{args.port}: "
              f"{exc}", file=sys.stderr)
        return EXIT_RUN_FAILED
    jobs = response.get("jobs", [])
    if not jobs:
        print("no jobs")
        return EXIT_OK
    for job in jobs:
        _describe_served_job(job, verbose=args.verbose)
    return EXIT_OK


def _cmd_validate(args) -> int:
    from repro.core.validate import validate_spec
    from repro.runtime import RunSpec, SpecError

    try:
        if args.spec:
            spec = RunSpec.from_file(args.spec)
        else:
            spec = RunSpec(
                element=args.element,
                reps=tuple(args.reps),
                temperature=args.temperature,
                steps=args.steps,
                seed=args.seed,
            )
        comparison, passed = validate_spec(
            spec, tol_pos=args.tol_pos, tol_energy=args.tol_energy
        )
    except SpecError as exc:
        print(f"error: invalid run spec: {exc}", file=sys.stderr)
        return EXIT_BAD_SPEC
    except Exception as exc:
        print(f"error: validation run failed: {exc}", file=sys.stderr)
        return EXIT_RUN_FAILED
    print(f"trajectory equivalence: reference vs wse, {spec.element} "
          f"{spec.reps}, {comparison.n_steps} steps")
    print(f"  max position deviation: {comparison.max_position_error:.3e} A "
          f"(tol {args.tol_pos:g})")
    print(f"  max velocity deviation: {comparison.max_velocity_error:.3e} "
          f"A/ps")
    print(f"  potential energy deviation: {comparison.energy_error:.3e} eV "
          f"(tol {args.tol_energy:g})")
    print("PASS" if passed else "FAIL")
    return EXIT_OK if passed else EXIT_RUN_FAILED


def _cmd_bench(args) -> int:
    import json

    from repro.bench import (
        attach_multiwafer,
        compare_to_baseline,
        consistency_check,
        cross_backend_notes,
        latest_results,
        run_bench,
        write_report,
    )

    if args.backend:
        from repro.kernels import available_backends, backend_status

        if args.backend not in available_backends():
            reason = backend_status().get(args.backend, "unknown backend")
            print(
                f"error: --backend {args.backend} is unavailable "
                f"({reason}); a pinned backend never benches the numpy "
                f"fallback",
                file=sys.stderr,
            )
            return EXIT_BAD_SPEC
    backend = _set_backend(args.backend)
    mode = "quick" if args.quick else "full"
    print(f"repro bench: {mode} mode, {backend} kernels")
    if args.check:
        workers = args.workers if args.workers is not None else 2
        label = (f"{args.topology[0]}x{args.topology[1]}"
                 if args.topology else f"w={workers}")
        if args.transport:
            label += f", {args.transport} transport"
        failures = consistency_check(
            workers=workers, topology=args.topology,
            transport=args.transport,
        )
        if failures:
            print(f"CONSISTENCY CHECK FAILED (parallel {label} vs "
                  f"numpy):", file=sys.stderr)
            for line in failures:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"consistency check passed: parallel ({label}) matches "
              f"numpy")
    results = run_bench(
        quick=args.quick,
        elements=args.elements,
        engines=args.engines,
        steps=args.steps,
        profile=args.profile,
        workers=args.workers,
        transport=args.transport,
        progress=print,
    )
    if not results:
        print("no cases selected")
        return 2
    for r in results:
        speedup = (f", {r.speedup_vs_seed:.2f}x vs seed"
                   if r.speedup_vs_seed is not None else "")
        layout = ""
        topo = r.extra.get("topology")
        if topo:
            layout = f" [{topo[0]}x{topo[1]}, {r.extra.get('transport')}]"
        elif r.extra.get("workers"):
            layout = (f" [w={r.extra['workers']}, "
                      f"{r.extra.get('transport')}]")
        print(f"  {r.name}: {r.n_atoms} atoms, {r.steps} steps in "
              f"{r.wall_s:.2f} s -> {r.steps_per_s:.2f} steps/s"
              f"{speedup}{layout}")
    baseline = None
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    for line in cross_backend_notes(results, baseline, mode=mode):
        print(f"  vs numpy: {line}")
    for line in attach_multiwafer(results, baseline, mode=mode):
        print(f"  multiwafer: {line}")
    report = write_report(args.out, results, quick=args.quick,
                          backend=backend)
    print(f"wrote {args.out} ({len(latest_results(report))} cases, "
          f"{len(report['history'])} runs in history)")
    if baseline is not None:
        failures, notes = compare_to_baseline(results, baseline,
                                              max_drop=args.max_drop,
                                              mode=mode)
        for line in notes:
            print(f"  NO BASELINE {line}")
        if failures:
            print(f"REGRESSION vs {args.baseline}:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"no regression vs {args.baseline} "
              f"(allowance {args.max_drop:.0%})")
    return 0


def _cmd_profile(args) -> int:
    from repro.runtime import RunSpec, SpecError

    try:
        if args.spec:
            spec = RunSpec.from_file(args.spec)
            if args.steps is not None:
                from dataclasses import replace

                spec = replace(spec, steps=args.steps)
        else:
            if args.quick:
                reps = args.reps if args.reps is not None else [5, 5, 2]
                steps = args.steps if args.steps is not None else 30
                swap = (args.swap_interval
                        if args.swap_interval is not None else 10)
            else:
                reps = args.reps if args.reps is not None else [8, 8, 3]
                steps = args.steps if args.steps is not None else 100
                swap = (args.swap_interval
                        if args.swap_interval is not None else 0)
            spec = RunSpec(
                element=args.element,
                reps=tuple(reps),
                temperature=args.temperature,
                steps=steps,
                seed=args.seed,
                swap_interval=swap,
            )
    except SpecError as exc:
        print(f"error: invalid run spec: {exc}", file=sys.stderr)
        return EXIT_BAD_SPEC

    from repro.obs.profile import profile_spec
    from repro.obs.sinks import read_trace, render_phase_table

    engines = tuple(args.engines) if args.engines else ("reference", "wse")
    try:
        profiles = profile_spec(spec, engines=engines, trace_path=args.out)
    except Exception as exc:
        print(f"error: profile run failed: {exc}", file=sys.stderr)
        return EXIT_RUN_FAILED

    failures: list[str] = []
    for name, prof in profiles.items():
        print(render_phase_table(
            f"{name} engine: {prof.steps} steps, "
            f"wall {prof.wall_s:.3f} s",
            prof.phase_seconds,
            prof.wall_s,
        ))
        if prof.missing_phases:
            failures.append(
                f"{name}: missing phases {list(prof.missing_phases)}"
            )
        if prof.coverage < 0.95:
            failures.append(
                f"{name}: phases cover {prof.coverage:.1%} of wall "
                f"(< 95%)"
            )
        if name == "wse":
            if prof.fit is None:
                failures.append("wse: linear (A, B, C) fit unavailable")
            else:
                exp = prof.fit_expected
                errs = prof.fit_rel_errors()
                print(
                    f"fitted step model (ns): "
                    f"A={prof.fit.a_candidate:.1f} "
                    f"(target {exp['a_candidate']:.1f}), "
                    f"B={prof.fit.b_interaction:.1f} "
                    f"(target {exp['b_interaction']:.1f}), "
                    f"C={prof.fit.c_fixed:.1f} "
                    f"(target {exp['c_fixed']:.1f}), "
                    f"r^2={prof.fit.r_squared:.4f}"
                )
                worst = max(errs.values())
                if worst > 0.05:
                    failures.append(
                        f"wse: fitted constants off calibration by "
                        f"{worst:.1%} (> 5%)"
                    )

    try:
        records = read_trace(args.out)
    except ValueError as exc:
        failures.append(f"trace: {exc}")
        records = []
    print(f"trace: {len(records)} records -> {args.out}")

    if failures:
        for line in failures:
            print(f"CHECK FAILED: {line}",
                  file=sys.stderr if args.check else sys.stdout)
        if args.check:
            return EXIT_RUN_FAILED
    elif args.check:
        print("profile checks passed")
    return EXIT_OK


def _cmd_table1(args) -> int:
    from repro.baselines import FRONTIER_MODELS, QUARTZ_MODELS
    from repro.core.cycle_model import CycleCostModel
    from repro.io.table_io import Table
    from repro.potentials.elements import ELEMENTS

    model = CycleCostModel()
    table = Table(
        "Table I - 801,792-atom models (timesteps/s)",
        ["element", "WSE (model)", "Frontier", "Quartz", "vs GPU", "vs CPU"],
    )
    for sym in ("Cu", "W", "Ta"):
        el = ELEMENTS[sym]
        wse = model.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        gpu, _ = FRONTIER_MODELS[sym].best_rate(801_792)
        cpu, _ = QUARTZ_MODELS[sym].best_rate(801_792)
        table.add_row(sym, round(wse), round(gpu), round(cpu),
                      f"{wse / gpu:.0f}x", f"{wse / cpu:.0f}x")
    table.print()
    return 0


def _cmd_table5(args) -> int:
    from repro.io.table_io import Table
    from repro.perfmodel.projections import project_optimizations
    from repro.potentials.elements import ELEMENTS

    workloads = {
        s: (ELEMENTS[s].candidates, ELEMENTS[s].interactions)
        for s in ("Ta", "W", "Cu")
    }
    table = Table(
        "Table V - projected optimizations (1,000 timesteps/s)",
        ["stage", "Ta", "W", "Cu"],
    )
    for row in project_optimizations(workloads):
        table.add_row(row.description, *[
            f"{row.rates[s] / 1000:.0f}" for s in ("Ta", "W", "Cu")
        ])
    table.print()
    return 0


def _cmd_table6(args) -> int:
    from repro.core.cycle_model import CycleCostModel
    from repro.io.table_io import Table
    from repro.perfmodel.multiwafer import MultiWaferModel
    from repro.potentials.elements import ELEMENTS

    geometry = {"Cu": (283, 10), "W": (317, 8), "Ta": (317, 8)}
    lams = {"Cu": (78, 15), "W": (88, 17), "Ta": (88, 17)}
    cost = CycleCostModel()
    mw = MultiWaferModel()
    table = Table(
        "Table VI - multi-wafer ghost-region model",
        ["element", "lambda", "k", "steps/s", "% of 1 wafer"],
    )
    for sym in ("Cu", "W", "Ta"):
        el = ELEMENTS[sym]
        x, z = geometry[sym]
        single = cost.steps_per_second(
            el.candidates, el.interactions, el.neighborhood_b
        )
        for lam in lams[sym]:
            p = mw.evaluate(sym, x, z, lam, el.cutoff_nn, 1 / single, single)
            table.add_row(sym, lam, p.k_steps, round(p.rate_steps_per_s),
                          f"{100 * p.fraction_of_single_wafer:.0f}")
    table.print()
    return 0


def _cmd_fig1(args) -> int:
    from repro.baselines import FRONTIER_MODELS, QUARTZ_MODELS
    from repro.core.cycle_model import CycleCostModel
    from repro.io.table_io import Table
    from repro.perfmodel.timescale import TimescalePoint
    from repro.potentials.elements import ELEMENTS

    el = ELEMENTS["Ta"]
    wse = TimescalePoint("WSE-2", CycleCostModel().steps_per_second(
        el.candidates, el.interactions, el.neighborhood_b))
    gpu = TimescalePoint("Frontier",
                         FRONTIER_MODELS["Ta"].best_rate(801_792)[0])
    cpu = TimescalePoint("Quartz", QUARTZ_MODELS["Ta"].best_rate(801_792)[0])
    table = Table(
        "Fig. 1 - achievable Ta timescale (30 days, 2 fs steps)",
        ["machine", "steps/s", "simulated us", "vs GPU"],
    )
    for p in (wse, gpu, cpu):
        table.add_row(p.machine, round(p.rate_steps_per_s),
                      f"{p.simulated_us:,.0f}", f"{p.speedup_over(gpu):.0f}x")
    table.print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Wafer-scale MD reproduction (SC 2024) command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="machine and element summary")

    def add_workload_args(p: argparse.ArgumentParser) -> None:
        """The flags shared by ``run`` and ``submit`` (one RunSpec)."""
        p.add_argument("--spec", default=None, metavar="FILE",
                       help="declarative RunSpec file (.toml or .json); "
                            "workload flags below are ignored when given")
        p.add_argument("--element", choices=["Cu", "W", "Ta"], default="Ta")
        p.add_argument("--reps", type=int, nargs=3, default=[8, 8, 3],
                       metavar=("NX", "NY", "NZ"))
        p.add_argument("--steps", type=int, default=None,
                       help="timesteps (default 100, or the spec file's)")
        p.add_argument("--temperature", type=float, default=290.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--engine", choices=["wse", "reference"],
                       default="wse")
        p.add_argument("--swap-interval", type=int, default=0)
        p.add_argument("--force-symmetry", action="store_true")
        p.add_argument("--backend", default=None,
                       help="kernel backend (numpy, numba, parallel); "
                            "default: $REPRO_KERNEL_BACKEND or numpy")
        p.add_argument("--workers", type=int, default=None,
                       help="worker processes for the parallel backend "
                            "(default: os.cpu_count()), or for the wse "
                            "engine's offset-dispatch pool (default: "
                            "serial sweeps)")
        p.add_argument("--topology", type=_parse_topology, default=None,
                       metavar="PXxPY",
                       help="2D domain grid for the parallel backend "
                            "(e.g. 2x2; implies px*py workers; default: "
                            "1D columns, one per worker)")
        p.add_argument("--transport", default=None,
                       choices=["shared", "socket", "inline", "auto"],
                       help="parallel-backend transport (default: auto — "
                            "inline on core-starved hosts, else shared "
                            "memory; or $REPRO_PARALLEL_TRANSPORT)")
        p.add_argument("--offset-chunk", type=int, default=None,
                       help="wse streaming-sweep batch size in offsets "
                            "(default: auto-sized from the grid); a "
                            "speed/memory knob, never physics")
        p.add_argument("--fuse-integrate", action="store_true",
                       help="fold the leap-frog kick+drift into the kernel "
                            "backend's force_integrate pass (reference "
                            "engine; a speed knob, never physics)")
        p.add_argument("--checkpoint-interval", type=int, default=None,
                       help="also checkpoint every N steps (default: only "
                            "a final checkpoint)")

    run = sub.add_parser("run", help="run a thin-slab simulation")
    add_workload_args(run)
    run.add_argument("--checkpoint", default=None, metavar="PREFIX",
                     help="write checkpoints under this path prefix "
                          "(<prefix>.npz/.json/.xyz)")
    run.add_argument("--resume", default=None, metavar="PREFIX",
                     help="resume from this checkpoint prefix (spec "
                          "physics must match its spec_hash; a missing "
                          "or corrupt checkpoint exits 2, nothing runs)")

    serve = sub.add_parser(
        "serve",
        help="start the job server (slots + result cache over TCP)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7421,
                       help="TCP port (0 = pick a free one; default 7421)")
    serve.add_argument("--slots", type=int, default=2,
                       help="concurrent engine runs (default 2); "
                            "further jobs queue")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result-cache directory keyed by "
                            "(spec_hash, steps); omit to disable caching")
    serve.add_argument("--cache-bytes", type=int, default=2 * 1024**3,
                       help="cache LRU size cap in bytes (default 2 GiB)")
    serve.add_argument("--progress-interval", type=int, default=None,
                       help="steps between streamed progress events "
                            "(default: a tenth of each job)")

    submit = sub.add_parser(
        "submit", help="submit a run to a job server and await the result"
    )
    add_workload_args(submit)
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=7421)
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="client socket timeout in seconds")
    submit.add_argument("--replicas", type=int, default=1,
                        help="ensemble size: N jobs at seed, seed+1, ... "
                             "sharing lattice+potential construction")
    submit.add_argument("--sweep", default=None, metavar="FIELD=V1,V2",
                        help="parameter sweep, e.g. "
                             "temperature=100,200,300 (crossed with "
                             "--replicas)")
    submit.add_argument("--watch", action="store_true",
                        help="stream job events (state changes, progress, "
                             "log lines) while waiting")
    submit.add_argument("--no-wait", action="store_true",
                        help="return the queued job id immediately")

    jobs = sub.add_parser("jobs", help="inspect a job server")
    jobs.add_argument("--host", default="127.0.0.1")
    jobs.add_argument("--port", type=int, default=7421)
    jobs.add_argument("--timeout", type=float, default=600.0)
    jobs.add_argument("--verbose", action="store_true",
                      help="include each job's log lines")
    jobs.add_argument("--cancel", default=None, metavar="JOB",
                      help="cancel a queued or running job")
    jobs.add_argument("--stats", action="store_true",
                      help="scheduler + cache counters instead of the "
                           "job table")
    jobs.add_argument("--shutdown", action="store_true",
                      help="stop the server (drains running jobs)")

    validate = sub.add_parser(
        "validate",
        help="run both engines on one workload and check equivalence",
    )
    validate.add_argument("--spec", default=None, metavar="FILE",
                          help="RunSpec file; its engine field is ignored "
                               "(both engines always run)")
    validate.add_argument("--element", choices=["Cu", "W", "Ta"],
                          default="Ta")
    validate.add_argument("--reps", type=int, nargs=3, default=[4, 4, 2],
                          metavar=("NX", "NY", "NZ"))
    validate.add_argument("--steps", type=int, default=10)
    validate.add_argument("--temperature", type=float, default=150.0)
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--tol-pos", type=float, default=1e-8,
                          help="max |dx| in angstrom (default 1e-8)")
    validate.add_argument("--tol-energy", type=float, default=1e-6,
                          help="max |dE| in eV (default 1e-6)")

    bench = sub.add_parser(
        "bench", help="time both engines, write BENCH_kernels.json"
    )
    bench.add_argument("--quick", action="store_true",
                       help="small slabs (CI-sized, seconds not minutes)")
    bench.add_argument("--out", default="BENCH_kernels.json")
    bench.add_argument("--backend", default=None,
                       choices=["numpy", "numba", "parallel"],
                       help="kernel backend for every case (overrides "
                            "each case's own pin)")
    bench.add_argument("--workers", type=int, default=None,
                       help="worker count for parallel-backend cases "
                            "(par-Ta-*) and --check (default: each "
                            "case's own, check 2)")
    bench.add_argument("--topology", type=_parse_topology, default=None,
                       metavar="PXxPY",
                       help="2D domain grid for --check (e.g. 2x2; "
                            "timed topology cases keep their own grid)")
    bench.add_argument("--transport", default=None,
                       choices=["shared", "socket", "inline", "auto"],
                       help="transport for parallel-backend cases and "
                            "--check (default: auto — inline on "
                            "core-starved hosts, else shared memory)")
    bench.add_argument("--check", action="store_true",
                       help="first verify the parallel backend matches "
                            "numpy on total energy (<= 1e-9 relative) "
                            "before timing; non-zero exit on mismatch")
    bench.add_argument("--baseline", default=None,
                       help="previous report JSON to gate against")
    bench.add_argument("--max-drop", type=float, default=0.30,
                       help="max fractional steps/s drop vs baseline "
                            "(default 0.30)")
    bench.add_argument("--steps", type=int, default=None,
                       help="override timed steps for every case")
    bench.add_argument("--elements", nargs="*", default=None,
                       choices=["Cu", "W", "Ta"])
    bench.add_argument("--engines", nargs="*", default=None,
                       choices=["reference", "wse"])
    bench.add_argument("--profile", action="store_true",
                       help="trace engine phases and embed the per-phase "
                            "breakdown in each case's report entry")

    profile = sub.add_parser(
        "profile",
        help="trace one workload on both engines, write a JSONL trace",
    )
    profile.add_argument("--spec", default=None, metavar="FILE",
                         help="RunSpec file; its engine field is replaced "
                              "per profiled engine")
    profile.add_argument("--element", choices=["Cu", "W", "Ta"],
                         default="Ta")
    profile.add_argument("--reps", type=int, nargs=3, default=None,
                         metavar=("NX", "NY", "NZ"),
                         help="slab replications (default 8 8 3; "
                              "--quick: 5 5 2)")
    profile.add_argument("--steps", type=int, default=None,
                         help="timesteps (default 100; --quick: 30)")
    profile.add_argument("--temperature", type=float, default=290.0)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--swap-interval", type=int, default=None,
                         help="wse swap interval (default 0; --quick: 10 "
                              "so the swap phase fires)")
    profile.add_argument("--engines", nargs="*", default=None,
                         choices=["reference", "wse"])
    profile.add_argument("--out", default="profile_trace.jsonl",
                         help="JSONL trace path (default "
                              "profile_trace.jsonl)")
    profile.add_argument("--quick", action="store_true",
                         help="CI-sized workload (seconds)")
    profile.add_argument("--check", action="store_true",
                         help="exit non-zero unless the trace parses, all "
                              "taxonomy phases appear, coverage >= 95%%, "
                              "and the wse (A, B, C) fit is within 5%% of "
                              "calibration")

    for name in ("table1", "table5", "table6", "fig1"):
        sub.add_parser(name, help=f"print the {name} reproduction")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "info": _cmd_info,
        "run": _cmd_run,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "validate": _cmd_validate,
        "bench": _cmd_bench,
        "profile": _cmd_profile,
        "table1": _cmd_table1,
        "table5": _cmd_table5,
        "table6": _cmd_table6,
        "fig1": _cmd_fig1,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # stdout piped into a pager/head that closed early; not an error
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
