"""The async job scheduler: bounded runner slots over the runtime.

One :class:`JobScheduler` owns everything between an accepted
:class:`~repro.runtime.spec.RunSpec` and a served result:

* a bounded pool of **persistent runner slots** — an
  :class:`asyncio.Semaphore` gating a thread pool of the same width,
  so at most ``slots`` engines step concurrently while any number of
  jobs wait queued;
* **coalescing**: a submission whose ``(spec_hash, steps)`` key is
  already in flight attaches to the running job instead of spawning a
  duplicate engine run;
* the **result cache** (:class:`~repro.serve.cache.ResultCache`):
  exact keys return the stored telemetry without touching an engine,
  and longer requests resume from the deepest stored checkpoint;
* **ensembles**: N replicas / parameter sweeps expanded into jobs that
  share lattice + potential construction through the runtime's
  workload cache and amortize slot spawn across the batch;
* **lifecycle + cancellation**: ``queued -> running -> done | failed |
  cancelled``, with cancellation delivered cross-thread through
  :meth:`~repro.runtime.runner.Runner.request_stop` — the loop breaks
  at the next chunk boundary and the partial trajectory is cached, so
  cancelled work is still resumable;
* **event streaming**: state transitions, log lines, and per-interval
  progress samples (fed by the runner's existing observer bus) pushed
  to :class:`~repro.serve.events.EventBus` subscribers.

Thread discipline: job state transitions happen on the scheduler's
event loop; the engine loop runs in a worker thread and communicates
back only through ``loop.call_soon_threadsafe``.  Each served job
starts by re-arming the kernel/parallel warn-once caches
(:func:`repro.kernels.reset_warnings`) so one job's backend
degradation warnings are not silenced by an earlier, unrelated job's.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.obs import label, metrics
from repro.runtime.runner import Runner
from repro.runtime.spec import RunSpec, SpecError
from repro.serve.cache import ResultCache
from repro.serve.events import EventBus
from repro.serve.queue import Job, JobState, JobTable

__all__ = ["JobScheduler"]


class JobScheduler:
    """Accept RunSpecs, schedule them on runner slots, cache results.

    Parameters
    ----------
    slots:
        Concurrent engine runs (and worker threads).  Queued jobs wait.
    cache:
        Optional :class:`ResultCache`; without one every job is a fresh
        run and nothing is stored.
    bus:
        Optional :class:`EventBus` for subscribers; one is created when
        omitted.
    progress_interval:
        Steps between streamed progress events (0 = one tenth of each
        job's target, at least 1).
    """

    def __init__(
        self,
        *,
        slots: int = 2,
        cache: ResultCache | None = None,
        bus: EventBus | None = None,
        progress_interval: int = 0,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slots = int(slots)
        self.cache = cache
        self.bus = bus if bus is not None else EventBus()
        self.progress_interval = int(progress_interval)
        self.jobs = JobTable()
        self._inflight: dict[tuple, Job] = {}
        self._sem = asyncio.Semaphore(self.slots)
        self._executor = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="repro-serve"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        #: (element, reps) -> shared slab/potential (ensemble amortization)
        self._workload_cache: dict = {}
        self._workload_lock = threading.Lock()
        self._ensembles = 0
        self._closed = False

    # -- submission --------------------------------------------------------

    async def submit(
        self,
        spec: RunSpec,
        *,
        steps: int | None = None,
        ensemble: str | None = None,
    ) -> Job:
        """Accept one request; returns its (possibly coalesced) job.

        ``steps`` overrides the spec's run length.  A request whose
        ``(spec_hash, steps)`` is already queued or running attaches to
        that job — concurrent duplicates cost one engine run.
        """
        if self._closed:
            raise RuntimeError("scheduler is closed")
        self._loop = asyncio.get_running_loop()
        if steps is not None:
            spec = replace(spec, steps=int(steps))
        target = spec.steps
        key = (spec.spec_hash(), target)
        existing = self._inflight.get(key)
        if existing is not None and not existing.terminal:
            existing.coalesced += 1
            self._log(existing, "coalesced a duplicate submission")
            metrics().counter("serve.coalesced").inc()
            return existing
        job = self.jobs.new(spec, target, ensemble=ensemble)
        job.done_event = asyncio.Event()
        self._inflight[key] = job
        metrics().counter("serve.submitted").inc()
        self._log(job, f"queued: {spec.element} {spec.reps} "
                       f"x {target} steps ({spec.engine})")
        self.bus.publish(job.id, "state", {"state": job.state.value})
        job.task = asyncio.create_task(self._run_job(job))
        # safety net: a task cancelled before its body ever ran skips
        # _run_job's state handling entirely — without this callback
        # the job would stay QUEUED and its done_event never fire
        job.task.add_done_callback(lambda task: self._task_done(job, task))
        return job

    def _task_done(self, job: Job, task: asyncio.Task) -> None:
        if self._inflight.get(job.key) is job:
            self._inflight.pop(job.key, None)
        if job.terminal:
            return
        if task.cancelled():
            self._set_state(job, JobState.CANCELLED)
        elif task.exception() is not None:  # pragma: no cover - net
            job.error = repr(task.exception())
            self._set_state(job, JobState.FAILED, error=job.error)

    async def submit_ensemble(
        self,
        spec: RunSpec,
        *,
        replicas: int = 1,
        sweep: dict | None = None,
        steps: int | None = None,
    ) -> list[Job]:
        """Batch submission: N replicas and/or a parameter sweep.

        Replica ``i`` runs ``seed + i``; ``sweep`` maps one spec field
        to a list of values (crossed with the replicas).  All jobs in
        the batch share lattice + potential construction through the
        workload cache and drain through the same persistent slots.
        """
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self._ensembles += 1
        batch = f"e{self._ensembles:03d}"
        variants = [spec]
        if sweep:
            from dataclasses import fields

            known = {f.name for f in fields(RunSpec)}
            variants = []
            for field_name, values in sweep.items():
                if field_name not in known:
                    raise SpecError(
                        f"unknown sweep field {field_name!r}; "
                        f"expected a RunSpec field"
                    )
                for value in values:
                    variants.append(replace(spec, **{field_name: value}))
        jobs = []
        for variant in variants:
            for i in range(replicas):
                member = replace(variant, seed=variant.seed + i)
                jobs.append(
                    await self.submit(member, steps=steps, ensemble=batch)
                )
        metrics().counter("serve.ensembles").inc()
        return jobs

    async def wait(self, job: Job) -> Job:
        """Block until the job reaches a terminal state."""
        await job.done_event.wait()
        return job

    async def cancel(self, job_id: str) -> bool:
        """Cancel a queued or running job; ``False`` if already done.

        A queued job is dropped before it ever takes a slot; a running
        job is asked to stop at the next chunk boundary, its partial
        checkpoint is cached, and its state becomes ``cancelled``.
        """
        job = self.jobs.get(job_id)
        if job is None or job.terminal:
            return False
        job.cancel_requested = True
        self._log(job, "cancellation requested")
        runner = job.runner
        if runner is not None:
            runner.request_stop()
        elif job.state is JobState.QUEUED and job.task is not None:
            job.task.cancel()
        await job.done_event.wait()
        return job.state is JobState.CANCELLED

    # -- loop-side internals -----------------------------------------------

    def _set_state(self, job: Job, state: JobState, **payload) -> None:
        job.state = state
        metrics().counter(label("serve.jobs", state=state.value)).inc()
        self.bus.publish(
            job.id, "state", {"state": state.value, **payload}
        )
        if job.terminal:
            metrics().gauge(
                label("serve.job.resume_step", job=job.id)
            ).set(job.resume_step)
            job.done_event.set()

    def _log(self, job: Job, line: str) -> None:
        job.log.append(line)
        self.bus.publish(job.id, "log", {"line": line})

    def _post(self, fn, *args) -> None:
        """Run ``fn`` on the scheduler loop from a worker thread."""
        self._loop.call_soon_threadsafe(fn, *args)

    async def _run_job(self, job: Job) -> None:
        try:
            async with self._sem:
                if job.cancel_requested:
                    self._set_state(job, JobState.CANCELLED)
                    return
                self._set_state(job, JobState.RUNNING)
                result = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self._execute, job
                )
                job.result = result
                if job.cancel_requested and result.get("steps", 0) < job.steps:
                    self._set_state(job, JobState.CANCELLED)
                else:
                    self._set_state(job, JobState.DONE, cache=job.cache)
        except asyncio.CancelledError:
            self._set_state(job, JobState.CANCELLED)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.error = f"{type(exc).__name__}: {exc}"
            self._log(job, f"failed: {job.error}")
            self._set_state(job, JobState.FAILED, error=job.error)
        finally:
            if self._inflight.get(job.key) is job:
                self._inflight.pop(job.key, None)

    # -- worker-thread execution -------------------------------------------

    def _execute(self, job: Job) -> dict:
        """Serve one job on a worker thread; returns the result dict."""
        from repro.kernels import reset_warnings as reset_kernel_warnings
        from repro.parallel import reset_warnings as reset_parallel_warnings

        # per-job re-arm: an earlier job's fallback must not silence
        # this job's, and vice versa (warn-once caches are process
        # state that also survives fork)
        reset_kernel_warnings()
        reset_parallel_warnings()

        spec = job.spec
        spec_hash, target = job.key

        if self.cache is not None:
            entry = self.cache.lookup(spec_hash, target)
            if entry is not None:
                telemetry = self.cache.telemetry(spec_hash, target)
                if telemetry is not None:
                    job.cache = "hit"
                    self._post(
                        self._log, job,
                        f"cache hit: ({spec_hash}, {target}) served from "
                        f"stored result, no engine run",
                    )
                    return {
                        "telemetry": telemetry,
                        "cache": "hit",
                        "resume_step": 0,
                        "steps": target,
                        "checkpoint": str(self.cache.prefix(spec_hash, target)),
                    }
                # checkpoint valid but telemetry sidecar unreadable:
                # fall through and recompute
                self.cache.evict(spec_hash, target)

        runner = self._build_runner(job, spec_hash, target)
        job.runner = runner
        if job.cancel_requested:  # close the submit/cancel race
            runner.request_stop()
        interval = self.progress_interval or max(1, target // 10)
        runner.add_observer(interval, self._make_progress_observer(job))
        metrics().counter("serve.engine_runs").inc()
        try:
            telemetry = runner.run(target - runner.engine.step_count)
            reached = runner.engine.step_count
        finally:
            runner.close()
        job.runner = None

        tele = telemetry.as_dict()
        tele["serve"] = {
            "job": job.id,
            "resume_step": int(job.resume_step),
            "reached_step": int(reached),
            "cache": job.cache,
        }
        checkpoint = None
        if self.cache is not None:
            self.cache.put(
                spec_hash,
                reached,
                tele,
                src_prefix=self.cache.prefix(spec_hash, target),
            )
            checkpoint = str(self.cache.prefix(spec_hash, reached))
            self._post(
                self._log, job,
                f"cached result under ({spec_hash}, {reached})",
            )
        if reached < target:
            self._post(
                self._log, job,
                f"stopped at step {reached} of {target}",
            )
        return {
            "telemetry": tele,
            "cache": job.cache,
            "resume_step": int(job.resume_step),
            "steps": int(reached),
            "checkpoint": checkpoint,
        }

    def _build_runner(self, job: Job, spec_hash: str, target: int) -> Runner:
        """Fresh or resumed runner, checkpointing into the cache dir."""
        from repro.runtime.engines import build_state

        spec = job.spec
        prefix = (
            self.cache.prefix(spec_hash, target)
            if self.cache is not None
            else None
        )
        if self.cache is not None:
            entry = self.cache.best_resume(spec_hash, target)
            if entry is not None:
                runner = Runner.resume(
                    spec,
                    self.cache.prefix(spec_hash, entry.steps),
                    checkpoint_prefix=prefix,
                )
                job.cache = "resume"
                job.resume_step = runner.engine.step_count
                self._post(
                    self._log, job,
                    f"resumed from cached checkpoint at step "
                    f"{job.resume_step} (of {target})",
                )
                return runner
        job.cache = "miss"
        with self._workload_lock:
            state, potential = build_state(
                spec, workload_cache=self._workload_cache
            )
        self._post(self._log, job, "cache miss: fresh engine run")
        return Runner.from_spec(
            spec,
            checkpoint_prefix=prefix,
            state=state,
            potential=potential,
        )

    def _make_progress_observer(self, job: Job):
        """Runner observer streaming progress through the event bus."""

        def observer(event) -> None:
            step = event.step
            payload = {"step": int(step), "of": int(job.steps)}
            try:
                payload["temperature"] = round(
                    float(event.state.temperature()), 3
                )
            except Exception:  # pragma: no cover - engine-specific
                pass
            metrics().gauge(label("serve.job.step", job=job.id)).set(step)
            self._post(self.bus.publish, job.id, "progress", payload)

        return observer

    # -- lifecycle ---------------------------------------------------------

    async def close(self) -> None:
        """Cancel outstanding jobs, drain the slots, release the pool."""
        if self._closed:
            return
        self._closed = True
        pending = [job for job in self.jobs.all() if not job.terminal]
        for job in pending:
            job.cancel_requested = True
            runner = job.runner
            if runner is not None:
                runner.request_stop()
            elif job.state is JobState.QUEUED and job.task is not None:
                job.task.cancel()
        for job in pending:
            await job.done_event.wait()
        self._executor.shutdown(wait=True)

    def snapshot(self) -> dict:
        """JSON-ready view of the whole scheduler (API stats op)."""
        states: dict[str, int] = {}
        for job in self.jobs.all():
            states[job.state.value] = states.get(job.state.value, 0) + 1
        out = {
            "slots": self.slots,
            "jobs": len(self.jobs),
            "states": states,
        }
        if self.cache is not None:
            out["cache"] = self.cache.stats()
        return out
