"""The serve wire protocol: a JSON-lines TCP API over the scheduler.

One request per connection, newline-delimited JSON both ways.  The
request is an object with an ``op`` plus op-specific fields; the
response is ``{"ok": true, ...}`` or ``{"ok": false, "error": ...,
"code": ...}`` where ``code`` mirrors the CLI's exit codes (2 for a
malformed spec, 1 for anything else).

Ops
---
``ping``
    Liveness probe.
``submit``
    ``spec`` (a :meth:`RunSpec.to_dict` mapping), optional ``steps``
    override, ``replicas``/``sweep`` for ensembles, ``wait`` (default
    true) to block until terminal, ``watch`` to stream each
    :class:`~repro.serve.events.JobEvent` as an interim
    ``{"event": ...}`` line before the final response.
``jobs`` / ``status`` / ``cancel``
    The job table, one job by id, and cancellation.
``stats``
    Scheduler snapshot: slots, job states, cache counters.
``shutdown``
    Acknowledge, then stop the server loop.

:class:`ServeClient` is the blocking counterpart used by the
``repro submit`` / ``repro jobs`` commands and tests — plain sockets,
no asyncio required in the caller.
"""

from __future__ import annotations

import asyncio
import json
import socket

from repro.runtime.spec import RunSpec, SpecError
from repro.serve.queue import Job
from repro.serve.scheduler import JobScheduler

__all__ = ["ServeServer", "ServeClient", "run_server"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 7421


class ServeServer:
    """Asyncio TCP front-end for one :class:`JobScheduler`."""

    def __init__(
        self,
        scheduler: JobScheduler,
        *,
        host: str = DEFAULT_HOST,
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.host = host
        self._requested_port = port
        self._server: asyncio.Server | None = None
        self.shutdown_requested = asyncio.Event()

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` op arrives, then drain the scheduler."""
        if self._server is None:
            await self.start()
        await self.shutdown_requested.wait()
        await self.close()
        await self.scheduler.close()

    # -- connection handling -----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                await self._send(writer, {
                    "ok": False, "error": f"bad request: {exc}", "code": 1,
                })
                return
            await self._dispatch(request, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _send(self, writer: asyncio.StreamWriter, obj: dict) -> None:
        writer.write(json.dumps(obj).encode() + b"\n")
        await writer.drain()

    async def _dispatch(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        op = request.get("op")
        if op == "ping":
            await self._send(writer, {"ok": True, "pong": True})
        elif op == "submit":
            await self._op_submit(request, writer)
        elif op == "jobs":
            await self._send(writer, {
                "ok": True,
                "jobs": [
                    self._summary(job) for job in self.scheduler.jobs.all()
                ],
            })
        elif op == "status":
            job = self.scheduler.jobs.get(str(request.get("id")))
            if job is None:
                await self._send(writer, {
                    "ok": False,
                    "error": f"no such job {request.get('id')!r}",
                    "code": 1,
                })
            else:
                await self._send(writer, {"ok": True, "job": job.as_dict()})
        elif op == "cancel":
            cancelled = await self.scheduler.cancel(str(request.get("id")))
            await self._send(writer, {"ok": True, "cancelled": cancelled})
        elif op == "stats":
            await self._send(
                writer, {"ok": True, "stats": self.scheduler.snapshot()}
            )
        elif op == "shutdown":
            await self._send(writer, {"ok": True, "stopping": True})
            self.shutdown_requested.set()
        else:
            await self._send(writer, {
                "ok": False, "error": f"unknown op {op!r}", "code": 1,
            })

    @staticmethod
    def _summary(job: Job) -> dict:
        out = job.as_dict()
        out.pop("result", None)  # keep the listing line-sized
        return out

    async def _op_submit(
        self, request: dict, writer: asyncio.StreamWriter
    ) -> None:
        try:
            spec = RunSpec.from_dict(request.get("spec") or {})
        except SpecError as exc:
            await self._send(writer, {
                "ok": False, "error": f"invalid run spec: {exc}", "code": 2,
            })
            return
        steps = request.get("steps")
        replicas = int(request.get("replicas") or 1)
        sweep = request.get("sweep") or None
        watch = bool(request.get("watch"))
        wait = bool(request.get("wait", True)) or watch

        sub = self.scheduler.bus.subscribe() if watch else None
        try:
            if replicas > 1 or sweep:
                jobs = await self.scheduler.submit_ensemble(
                    spec, replicas=replicas, sweep=sweep, steps=steps
                )
            else:
                jobs = [await self.scheduler.submit(spec, steps=steps)]
            pending = {job.id for job in jobs if not job.terminal}
            if watch:
                while pending:
                    event = await sub.get()
                    if event.job_id not in {j.id for j in jobs}:
                        continue
                    await self._send(writer, {"event": event.as_dict()})
                    if (
                        event.kind == "state"
                        and self.scheduler.jobs.get(event.job_id).terminal
                    ):
                        pending.discard(event.job_id)
            elif wait:
                for job in jobs:
                    await self.scheduler.wait(job)
        except SpecError as exc:
            await self._send(writer, {
                "ok": False, "error": f"invalid run spec: {exc}", "code": 2,
            })
            return
        finally:
            if sub is not None:
                sub.close()
        payload = {"ok": True, "jobs": [job.as_dict() for job in jobs]}
        if len(jobs) == 1:
            payload["job"] = payload["jobs"][0]
        await self._send(writer, payload)


class ServeClient:
    """Blocking JSON-lines client (one connection per request)."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        *,
        timeout: float = 600.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def request(self, payload: dict, *, on_event=None) -> dict:
        """Send one request; interim ``{"event": ...}`` lines go to
        ``on_event``, the final response is returned."""
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as conn:
            conn.sendall(json.dumps(payload).encode() + b"\n")
            with conn.makefile("r", encoding="utf-8") as fh:
                for line in fh:
                    obj = json.loads(line)
                    if "event" in obj and "ok" not in obj:
                        if on_event is not None:
                            on_event(obj["event"])
                        continue
                    return obj
        raise ConnectionError("server closed the stream without a response")

    # -- convenience ops ---------------------------------------------------

    def ping(self) -> bool:
        try:
            return bool(self.request({"op": "ping"}).get("pong"))
        except OSError:
            return False

    def submit(
        self,
        spec: dict,
        *,
        steps: int | None = None,
        replicas: int = 1,
        sweep: dict | None = None,
        wait: bool = True,
        watch: bool = False,
        on_event=None,
    ) -> dict:
        payload = {
            "op": "submit", "spec": spec, "wait": wait, "watch": watch,
        }
        if steps is not None:
            payload["steps"] = int(steps)
        if replicas != 1:
            payload["replicas"] = int(replicas)
        if sweep:
            payload["sweep"] = sweep
        return self.request(payload, on_event=on_event)

    def jobs(self) -> dict:
        return self.request({"op": "jobs"})

    def status(self, job_id: str) -> dict:
        return self.request({"op": "status", "id": job_id})

    def cancel(self, job_id: str) -> dict:
        return self.request({"op": "cancel", "id": job_id})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})


def run_server(
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    *,
    slots: int = 2,
    cache_dir: str | None = None,
    cache_bytes: int = 2 * 1024**3,
    progress_interval: int = 0,
    announce=print,
) -> int:
    """Blocking entry point: serve until a ``shutdown`` op arrives."""
    from repro.serve.cache import ResultCache

    async def _serve() -> None:
        cache = (
            ResultCache(cache_dir, max_bytes=cache_bytes)
            if cache_dir
            else None
        )
        scheduler = JobScheduler(
            slots=slots, cache=cache, progress_interval=progress_interval
        )
        server = ServeServer(scheduler, host=host, port=port)
        await server.start()
        announce(
            f"repro serve: listening on {host}:{server.port} "
            f"({slots} slot{'s' if slots != 1 else ''}, "
            f"cache {cache_dir or 'off'})"
        )
        await server.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0
