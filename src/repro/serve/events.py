"""Event streaming: job lifecycle and telemetry to live subscribers.

The scheduler publishes :class:`JobEvent` records — state transitions,
per-interval progress samples (fed by the runner's existing observer
bus), and log lines.  Subscribers attach an :class:`asyncio.Queue`
through :meth:`EventBus.subscribe`, optionally filtered to one job; the
API layer turns a subscription into a stream of JSON lines for
``repro submit --watch``.

Publishing is loop-confined: the scheduler's event loop calls
:meth:`EventBus.publish` directly, and worker threads hand events to
the loop via ``loop.call_soon_threadsafe`` (see the scheduler's
``_post`` helper).  Slow subscribers never block the scheduler — a
full queue drops the oldest event and counts the drop.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.obs import metrics

__all__ = ["JobEvent", "Subscription", "EventBus"]


@dataclass(frozen=True)
class JobEvent:
    """One thing that happened to a job."""

    seq: int
    job_id: str
    #: ``"state"`` (payload: state, cache, ...), ``"progress"``
    #: (payload: step, temperature, ...), or ``"log"`` (payload: line).
    kind: str
    payload: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "job_id": self.job_id,
            "kind": self.kind,
            "payload": self.payload,
        }


class Subscription:
    """One subscriber's queue plus its filter; detach when done."""

    def __init__(self, bus: "EventBus", job_id: str | None, maxsize: int) -> None:
        self._bus = bus
        self.job_id = job_id
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=maxsize)

    def wants(self, event: JobEvent) -> bool:
        return self.job_id is None or event.job_id == self.job_id

    async def get(self) -> JobEvent:
        return await self.queue.get()

    def close(self) -> None:
        self._bus._detach(self)


class EventBus:
    """Fan-out of job events to any number of live subscribers."""

    def __init__(self, *, maxsize: int = 1024) -> None:
        self._subs: list[Subscription] = []
        self._seq = 0
        self._maxsize = maxsize

    def subscribe(self, job_id: str | None = None) -> Subscription:
        """Attach a queue receiving every event (or one job's)."""
        sub = Subscription(self, job_id, self._maxsize)
        self._subs.append(sub)
        return sub

    def _detach(self, sub: Subscription) -> None:
        try:
            self._subs.remove(sub)
        except ValueError:
            pass

    def publish(self, job_id: str, kind: str, payload: dict | None = None) -> JobEvent:
        """Emit one event to every matching subscriber (loop thread only)."""
        self._seq += 1
        event = JobEvent(self._seq, job_id, kind, payload or {})
        for sub in self._subs:
            if not sub.wants(event):
                continue
            try:
                sub.queue.put_nowait(event)
            except asyncio.QueueFull:
                # drop the oldest rather than stall the scheduler
                try:
                    sub.queue.get_nowait()
                except asyncio.QueueEmpty:  # pragma: no cover - race-free
                    pass
                sub.queue.put_nowait(event)
                metrics().counter("serve.events.dropped").inc()
        metrics().counter("serve.events.published").inc()
        return event
