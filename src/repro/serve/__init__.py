"""``repro.serve`` — the MD runtime as a long-lived service.

The paper's wafer holds a simulation for days; the question this layer
answers is what sits *in front* of such an engine: a job runtime that
accepts declarative :class:`~repro.runtime.spec.RunSpec` requests,
schedules them onto a bounded pool of persistent runner slots, and
never recomputes what it already knows.  Results are cached by
``(spec_hash, n_steps)`` on top of the atomic checkpoint store — an
identical request returns the stored telemetry without touching an
engine, and a request for *more* steps of a cached spec resumes from
the stored checkpoint instead of restarting from step zero.

Layers (each its own module):

* :mod:`~repro.serve.queue` — the job model and table
  (``queued -> running -> done | failed | cancelled``);
* :mod:`~repro.serve.cache` — the on-disk result cache with LRU cap
  and corruption-tolerant validation;
* :mod:`~repro.serve.events` — lifecycle/progress/log streaming to
  subscribers;
* :mod:`~repro.serve.scheduler` — slots, coalescing, ensembles,
  cancellation;
* :mod:`~repro.serve.api` — the JSON-lines TCP wire protocol and the
  blocking client behind ``repro serve`` / ``repro submit`` /
  ``repro jobs``.
"""

from repro.serve.api import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServeClient,
    ServeServer,
    run_server,
)
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.events import EventBus, JobEvent, Subscription
from repro.serve.queue import TERMINAL_STATES, Job, JobState, JobTable
from repro.serve.scheduler import JobScheduler

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "ServeClient",
    "ServeServer",
    "run_server",
    "CacheEntry",
    "ResultCache",
    "EventBus",
    "JobEvent",
    "Subscription",
    "TERMINAL_STATES",
    "Job",
    "JobState",
    "JobTable",
    "JobScheduler",
]
