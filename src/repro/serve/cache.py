"""Spec-hash result cache over the atomic checkpoint store.

The cache directory holds one entry per ``(spec_hash, n_steps)`` key:
the checkpoint trio (``<hash>-<steps>.npz/.json/.xyz`` — the same
atomic, fsynced files :mod:`repro.runtime.checkpoint` writes) plus the
run's telemetry (``<hash>-<steps>.telemetry.json``), indexed by
``index.json``.

Because ``spec_hash`` digests only the physics-determining fields, a
request that differs solely in speed knobs (``workers``, ``topology``,
``transport``, ``offset_chunk``, ``backend``, ``fuse_integrate``) maps
to the same key and hits.  A request for *more* steps of a cached spec
finds the deepest shallower entry via :meth:`best_resume` and continues
from its checkpoint instead of restarting.

Durability and corruption tolerance:

* entries are registered in the index only after their files are fully
  published, so a crash mid-run never indexes a partial result;
* loading sweeps orphaned ``*.tmp`` files an interrupted write left
  behind and drops index entries whose files are missing;
* every lookup re-validates the checkpoint through
  :func:`~repro.runtime.checkpoint.read_checkpoint` — a torn or
  physics-mismatched trio (including a sidecar step count disagreeing
  with the npz payload) evicts the entry and reports a miss instead of
  serving garbage;
* an LRU byte cap bounds the directory; eviction order is a persisted
  logical clock, not wall time, so it is deterministic under test.

The cache is shared by every runner slot, so all operations serialize
behind one reentrant lock — concurrent ``put`` calls from worker
threads must not race the ``index.json.tmp`` -> ``index.json`` rename.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.obs import metrics
from repro.runtime.checkpoint import (
    CheckpointError,
    checkpoint_paths,
    read_checkpoint,
    sweep_orphan_tmp,
)

__all__ = ["CacheEntry", "ResultCache"]

INDEX_NAME = "index.json"
#: Index schema tag; bump on incompatible layout changes.
INDEX_SCHEMA = "repro-serve-cache/1"


@dataclass(frozen=True)
class CacheEntry:
    """One validated cache row."""

    spec_hash: str
    steps: int
    nbytes: int

    @property
    def key(self) -> tuple:
        return (self.spec_hash, self.steps)


def _key_name(spec_hash: str, steps: int) -> str:
    return f"{spec_hash}-{int(steps)}"


class ResultCache:
    """On-disk ``(spec_hash, n_steps)`` result store with LRU cap."""

    def __init__(
        self, root: str | Path, *, max_bytes: int = 2 * 1024**3
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bytes = int(max_bytes)
        self.hits = 0
        self.misses = 0
        self.resumes = 0
        self.evictions = 0
        self._clock = 0
        #: key -> {"bytes": int, "used": int}
        self._entries: dict[tuple, dict] = {}
        # reentrant: evict() runs inside locked lookup()/best_resume()
        self._lock = threading.RLock()
        self._load_index()

    # -- paths -------------------------------------------------------------

    def prefix(self, spec_hash: str, steps: int) -> Path:
        """Checkpoint path prefix for a key (also the staging prefix)."""
        return self.root / _key_name(spec_hash, steps)

    def _telemetry_path(self, spec_hash: str, steps: int) -> Path:
        return self.root / (_key_name(spec_hash, steps) + ".telemetry.json")

    def _entry_files(self, spec_hash: str, steps: int) -> list[Path]:
        return [
            *checkpoint_paths(self.prefix(spec_hash, steps)),
            self._telemetry_path(spec_hash, steps),
        ]

    # -- index persistence -------------------------------------------------

    def _load_index(self) -> None:
        """Read the index tolerantly; sweep crash leftovers.

        A corrupt or missing index is an empty cache, never an error —
        unreferenced entry files are garbage-collected, and orphaned
        ``*.tmp`` siblings from interrupted writes are removed.
        """
        for tmp in self.root.glob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - unreadable dir
                pass
        index_path = self.root / INDEX_NAME
        raw = {}
        try:
            raw = json.loads(index_path.read_text())
        except (OSError, json.JSONDecodeError):
            raw = {}
        if raw.get("schema") != INDEX_SCHEMA:
            raw = {}
        self._clock = int(raw.get("clock", 0))
        kept_names = {INDEX_NAME}
        for row in raw.get("entries", []):
            try:
                spec_hash = str(row["spec_hash"])
                steps = int(row["steps"])
                nbytes = int(row["bytes"])
                used = int(row["used"])
            except (KeyError, TypeError, ValueError):
                continue
            files = self._entry_files(spec_hash, steps)
            if not all(p.exists() for p in files):
                continue  # torn entry: files gone, drop the row
            self._entries[(spec_hash, steps)] = {
                "bytes": nbytes, "used": used,
            }
            kept_names.update(p.name for p in files)
        # files no index row references are leftovers from a crash
        # between publish and index write (or from an evicted entry)
        for path in self.root.iterdir():
            if path.name not in kept_names and path.is_file():
                try:
                    path.unlink()
                except OSError:  # pragma: no cover
                    pass
        self._persist()

    def _persist(self) -> None:
        index_path = self.root / INDEX_NAME
        payload = {
            "schema": INDEX_SCHEMA,
            "clock": self._clock,
            "entries": [
                {
                    "spec_hash": key[0],
                    "steps": key[1],
                    "bytes": row["bytes"],
                    "used": row["used"],
                }
                for key, row in sorted(self._entries.items())
            ],
        }
        tmp = index_path.with_name(index_path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, index_path)

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(row["bytes"] for row in self._entries.values())

    def stats(self) -> dict:
        """JSON-ready counters for the API's stats op."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.total_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "resumes": self.resumes,
                "evictions": self.evictions,
            }

    def _touch(self, key: tuple) -> None:
        self._clock += 1
        self._entries[key]["used"] = self._clock

    def _validate(self, spec_hash: str, steps: int) -> bool:
        """Re-check an entry's checkpoint before serving it.

        Corruption-tolerant: any :class:`CheckpointError` (torn npz,
        bad sidecar, step-count disagreement, physics mismatch) — or a
        checkpoint whose recorded step count is not the key's — evicts
        the entry and reports it unusable.
        """
        prefix = self.prefix(spec_hash, steps)
        sweep_orphan_tmp(prefix)
        try:
            checkpoint = read_checkpoint(prefix, expected_spec_hash=spec_hash)
        except CheckpointError:
            self.evict(spec_hash, steps)
            metrics().counter("serve.cache.corrupt").inc()
            return False
        if checkpoint.step_count != steps:
            self.evict(spec_hash, steps)
            metrics().counter("serve.cache.corrupt").inc()
            return False
        return True

    def lookup(self, spec_hash: str, steps: int) -> CacheEntry | None:
        """Exact hit for ``(spec_hash, steps)``, or ``None``."""
        with self._lock:
            key = (spec_hash, int(steps))
            row = self._entries.get(key)
            if row is None or not self._validate(*key):
                self.misses += 1
                metrics().counter("serve.cache.miss").inc()
                return None
            self._touch(key)
            self._persist()
            self.hits += 1
            metrics().counter("serve.cache.hit").inc()
            return CacheEntry(key[0], key[1], row["bytes"])

    def best_resume(self, spec_hash: str, steps: int) -> CacheEntry | None:
        """Deepest valid entry of this spec strictly shallower than
        ``steps`` — the checkpoint a longer run resumes from."""
        with self._lock:
            candidates = sorted(
                (
                    key
                    for key in self._entries
                    if key[0] == spec_hash and key[1] < int(steps)
                ),
                key=lambda key: key[1],
                reverse=True,
            )
            for key in candidates:
                if self._validate(*key):
                    self._touch(key)
                    self._persist()
                    self.resumes += 1
                    metrics().counter("serve.cache.resume").inc()
                    return CacheEntry(
                        key[0], key[1], self._entries[key]["bytes"]
                    )
            return None

    def telemetry(self, spec_hash: str, steps: int) -> dict | None:
        """The stored telemetry for a key (``None`` if unreadable)."""
        try:
            return json.loads(
                self._telemetry_path(spec_hash, steps).read_text()
            )
        except (OSError, json.JSONDecodeError):
            return None

    # -- mutation ----------------------------------------------------------

    def put(
        self,
        spec_hash: str,
        steps: int,
        telemetry: dict,
        *,
        src_prefix: str | Path | None = None,
    ) -> CacheEntry:
        """Publish a finished run under ``(spec_hash, steps)``.

        The checkpoint trio is expected at :meth:`prefix` (the
        scheduler points the runner's checkpoint prefix there), or at
        ``src_prefix`` — e.g. when a cancelled run stopped short of its
        target and the files carry the target's name — in which case
        the trio is renamed onto the key it actually computed.
        """
        with self._lock:
            steps = int(steps)
            dst = self.prefix(spec_hash, steps)
            if src_prefix is not None and Path(src_prefix) != dst:
                for src, final in zip(
                    checkpoint_paths(src_prefix), checkpoint_paths(dst)
                ):
                    os.replace(src, final)
            tele_path = self._telemetry_path(spec_hash, steps)
            tmp = tele_path.with_name(tele_path.name + ".tmp")
            tmp.write_text(
                json.dumps(telemetry, indent=2, sort_keys=True) + "\n"
            )
            os.replace(tmp, tele_path)
            nbytes = sum(
                p.stat().st_size for p in self._entry_files(spec_hash, steps)
            )
            key = (spec_hash, steps)
            self._clock += 1
            self._entries[key] = {"bytes": nbytes, "used": self._clock}
            self._evict_over_cap(keep=key)
            self._persist()
            metrics().counter("serve.cache.put").inc()
            return CacheEntry(spec_hash, steps, nbytes)

    def evict(self, spec_hash: str, steps: int) -> None:
        """Drop one entry and its files (missing files are fine)."""
        with self._lock:
            self._entries.pop((spec_hash, int(steps)), None)
            for path in self._entry_files(spec_hash, steps):
                try:
                    path.unlink()
                except OSError:
                    pass
            self._persist()

    def _evict_over_cap(self, *, keep: tuple) -> None:
        """LRU-evict until under the byte cap (never the ``keep`` key)."""
        while self.total_bytes > self.max_bytes and len(self._entries) > 1:
            victim = min(
                (key for key in self._entries if key != keep),
                key=lambda key: self._entries[key]["used"],
                default=None,
            )
            if victim is None:
                break
            self._entries.pop(victim)
            for path in self._entry_files(*victim):
                try:
                    path.unlink()
                except OSError:
                    pass
            self.evictions += 1
            metrics().counter("serve.cache.evicted").inc()

    def clear(self) -> None:
        """Drop everything (directory survives, empty and indexed)."""
        with self._lock:
            for key in list(self._entries):
                self.evict(*key)
            shutil.rmtree(self.root, ignore_errors=True)
            self.root.mkdir(parents=True, exist_ok=True)
            self._persist()
