"""Job model and table for the serve layer.

A :class:`Job` is one accepted request: a :class:`~repro.runtime.spec.
RunSpec` plus a target step count, moving through the lifecycle
``queued -> running -> done | failed | cancelled``.  The job's *cache
disposition* (``hit`` / ``resume`` / ``miss``) records how the
scheduler satisfied it — identical requests return the stored result,
longer requests continue from the stored checkpoint — and the
append-only ``log`` narrates the decisions for ``repro jobs`` and the
CI smoke.

The :class:`JobTable` is the scheduler's in-memory registry: insertion-
ordered, id-keyed, with monotonically increasing ids.  It is loop-
confined state — only the scheduler's event loop creates jobs and
transitions states; worker threads append log lines (list append is
atomic under the GIL) and set result fields before the loop publishes
the terminal transition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.runtime.spec import RunSpec

__all__ = ["JobState", "TERMINAL_STATES", "Job", "JobTable"]


class JobState(str, enum.Enum):
    """Lifecycle of a served job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)


@dataclass
class Job:
    """One accepted request and everything learned while serving it."""

    id: str
    spec: RunSpec
    steps: int
    state: JobState = JobState.QUEUED
    #: How the cache satisfied the job: ``"hit"`` (stored result
    #: returned, no engine run), ``"resume"`` (continued from a stored
    #: checkpoint), ``"miss"`` (fresh run), or ``None`` while queued.
    cache: Optional[str] = None
    #: Step count the engine *started* from (> 0 only on resume).
    resume_step: int = 0
    #: Extra submissions coalesced into this job (same spec hash and
    #: step target while it was in flight).
    coalesced: int = 0
    #: Batch id when submitted as part of an ensemble.
    ensemble: Optional[str] = None
    error: Optional[str] = None
    result: Optional[dict] = None
    log: list = field(default_factory=list)
    cancel_requested: bool = False
    # loop-side handles (not serialized)
    task: object = None
    runner: object = None
    done_event: object = None

    @property
    def key(self) -> tuple:
        """The result-cache key this job computes: (spec_hash, steps)."""
        return (self.spec.spec_hash(), self.steps)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_dict(self) -> dict:
        """JSON-ready public view (what the API returns)."""
        return {
            "id": self.id,
            "state": self.state.value,
            "element": self.spec.element,
            "reps": list(self.spec.reps),
            "engine": self.spec.engine,
            "steps": int(self.steps),
            "spec_hash": self.spec.spec_hash(),
            "cache": self.cache,
            "resume_step": int(self.resume_step),
            "coalesced": int(self.coalesced),
            "ensemble": self.ensemble,
            "error": self.error,
            "result": self.result,
            "log": list(self.log),
        }


class JobTable:
    """Insertion-ordered, id-keyed registry of every accepted job."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._next = 1

    def new(self, spec: RunSpec, steps: int, *, ensemble: str | None = None) -> Job:
        job_id = f"j{self._next:04d}"
        self._next += 1
        job = Job(id=job_id, spec=spec, steps=int(steps), ensemble=ensemble)
        self._jobs[job_id] = job
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def all(self) -> list[Job]:
        return list(self._jobs.values())

    def __len__(self) -> int:
        return len(self._jobs)
