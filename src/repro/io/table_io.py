"""Plain-text table rendering for the benchmark harness.

Every benchmark prints the rows of the paper table/figure it
regenerates; this tiny formatter keeps them aligned and serializable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["Table"]


@dataclass
class Table:
    """Column-aligned text table with a title."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.title}: row has {len(values)} cells, "
                f"table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Aligned text rendering."""
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[c]), *(len(r[c]) for r in cells))
            if cells else len(self.columns[c])
            for c in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.columns, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for r in cells:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)

    @staticmethod
    def _fmt(v) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000:
                return f"{v:,.0f}"
            if abs(v) >= 1:
                return f"{v:.3g}"
            return f"{v:.3g}"
        return str(v)

    def print(self) -> None:
        """Print to stdout with surrounding blank lines."""
        print("\n" + self.render() + "\n")

    def to_json(self, path: str | Path) -> None:
        """Serialize title/columns/rows as JSON."""
        Path(path).write_text(
            json.dumps(
                {"title": self.title, "columns": self.columns, "rows": self.rows},
                indent=2,
                default=float,
            )
        )
