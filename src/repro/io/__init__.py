"""I/O: extended-XYZ trajectories, LAMMPS data files, benchmark tables."""

from repro.io.xyz import write_xyz, read_xyz, read_xyz_frames
from repro.io.lammps_data import write_lammps_data
from repro.io.table_io import Table

__all__ = ["write_xyz", "read_xyz", "read_xyz_frames", "write_lammps_data", "Table"]
