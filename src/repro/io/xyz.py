"""Extended-XYZ read/write for atom configurations."""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from repro.md.boundary import Box
from repro.md.state import AtomsState

__all__ = ["write_xyz", "read_xyz", "read_xyz_frames"]


def write_xyz(
    state: AtomsState,
    path: str | Path | io.TextIOBase,
    *,
    symbols: list[str] | None = None,
    comment: str = "",
    append: bool = False,
) -> None:
    """Write one frame in extended-XYZ format (positions + velocities)."""
    symbols = symbols or [f"T{t}" for t in range(len(state.masses))]
    lengths = state.box.lengths
    pbc = "".join("T" if p else "F" for p in state.box.periodic)
    header = (
        f'Lattice="{lengths[0]} 0 0 0 {lengths[1]} 0 0 0 {lengths[2]}" '
        f'pbc="{pbc}" Properties=species:S:1:pos:R:3:vel:R:3:id:I:1'
    )
    if comment:
        header += f" comment={comment!r}"
    out = io.StringIO()
    out.write(f"{state.n_atoms}\n{header}\n")
    for k in range(state.n_atoms):
        s = symbols[state.types[k]]
        p = state.positions[k]
        v = state.velocities[k]
        out.write(
            f"{s} {p[0]:.10f} {p[1]:.10f} {p[2]:.10f} "
            f"{v[0]:.10f} {v[1]:.10f} {v[2]:.10f} {state.ids[k]}\n"
        )
    text = out.getvalue()
    if isinstance(path, io.TextIOBase):
        path.write(text)
    else:
        mode = "a" if append else "w"
        with open(path, mode) as fh:
            fh.write(text)


def read_xyz_frames(
    path: str | Path | io.TextIOBase,
    *,
    masses: np.ndarray | None = None,
) -> list[AtomsState]:
    """Read every frame of a (possibly multi-frame) extended-XYZ file."""
    if isinstance(path, io.TextIOBase):
        lines = path.read().splitlines()
    else:
        lines = Path(path).read_text().splitlines()
    frames: list[AtomsState] = []
    k = 0
    while k < len(lines):
        if not lines[k].strip():
            k += 1
            continue
        n = int(lines[k])
        if k + 2 + n > len(lines):
            raise ValueError(
                f"frame at line {k + 1} declares {n} atoms but the file ends"
            )
        frames.append(_parse_frame(lines[k:k + 2 + n], masses))
        k += 2 + n
    if not frames:
        raise ValueError("no frames in xyz file")
    return frames


def read_xyz(
    path: str | Path | io.TextIOBase,
    *,
    masses: np.ndarray | None = None,
) -> AtomsState:
    """Read the first frame of an extended-XYZ file written by us."""
    if isinstance(path, io.TextIOBase):
        lines = path.read().splitlines()
    else:
        lines = Path(path).read_text().splitlines()
    if len(lines) < 2:
        raise ValueError("truncated xyz file")
    n = int(lines[0])
    if len(lines) < 2 + n:
        raise ValueError(f"xyz declares {n} atoms but has {len(lines) - 2}")
    return _parse_frame(lines[: 2 + n], masses)


def _parse_frame(lines: list[str], masses: np.ndarray | None) -> AtomsState:
    n = int(lines[0])
    header = lines[1]
    lat = header.split('Lattice="')[1].split('"')[0].split()
    lengths = np.array([float(lat[0]), float(lat[4]), float(lat[8])])
    pbc_str = header.split('pbc="')[1].split('"')[0]
    periodic = np.array([c == "T" for c in pbc_str])
    species: list[str] = []
    pos = np.empty((n, 3))
    vel = np.empty((n, 3))
    ids = np.empty(n, dtype=np.int64)
    for k in range(n):
        parts = lines[2 + k].split()
        species.append(parts[0])
        pos[k] = [float(x) for x in parts[1:4]]
        vel[k] = [float(x) for x in parts[4:7]]
        ids[k] = int(parts[7])
    uniq = sorted(set(species))
    types = np.array([uniq.index(s) for s in species], dtype=np.int64)
    if masses is None:
        masses = np.ones(len(uniq))
    box = Box(lengths, periodic, origin=pos.min(axis=0))
    return AtomsState(
        positions=pos, velocities=vel, types=types, masses=masses,
        box=box, ids=ids,
    )
