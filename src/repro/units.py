"""Small unit-conversion helpers layered over :mod:`repro.constants`.

These keep benchmark and performance-model code readable: cycle counts,
nanoseconds, and timesteps/second conversions all live here.
"""

from __future__ import annotations

NS_PER_S = 1.0e9
US_PER_S = 1.0e6
PS_PER_S = 1.0e12
FS_PER_S = 1.0e15


def ns_to_s(t_ns: float) -> float:
    """Nanoseconds to seconds."""
    return t_ns / NS_PER_S


def s_to_ns(t_s: float) -> float:
    """Seconds to nanoseconds."""
    return t_s * NS_PER_S


def cycles_to_ns(cycles: float, clock_hz: float) -> float:
    """Clock cycles to nanoseconds at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz * NS_PER_S


def ns_to_cycles(t_ns: float, clock_hz: float) -> float:
    """Nanoseconds to clock cycles at ``clock_hz``."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return t_ns / NS_PER_S * clock_hz


def steps_per_second(t_step_ns: float) -> float:
    """Timestep rate (steps/s) from the wall time of one step in ns."""
    if t_step_ns <= 0:
        raise ValueError(f"t_step_ns must be positive, got {t_step_ns}")
    return NS_PER_S / t_step_ns


def step_time_ns(rate_steps_per_s: float) -> float:
    """Wall time of one step (ns) from a timestep rate (steps/s)."""
    if rate_steps_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_steps_per_s}")
    return NS_PER_S / rate_steps_per_s


def simulated_time_per_day_us(rate_steps_per_s: float, dt_fs: float) -> float:
    """Simulated microseconds reachable per wall-clock day.

    ``rate_steps_per_s`` timesteps per second, each advancing ``dt_fs``
    femtoseconds of simulated time.
    """
    seconds_per_day = 86400.0
    fs = rate_steps_per_s * dt_fs * seconds_per_day
    return fs / 1.0e9  # fs -> us


def timesteps_per_joule(rate_steps_per_s: float, power_watts: float) -> float:
    """Energy efficiency: timesteps per joule at a given machine power."""
    if power_watts <= 0:
        raise ValueError(f"power must be positive, got {power_watts}")
    return rate_steps_per_s / power_watts
